"""The ``repro serve`` daemon: many live learning sessions, one loop.

This is the repo's one asyncio program (lint rule RL008 confines event
loops here). The shape:

* one ``asyncio.start_server`` accept loop; each connection handshakes
  (``hello``/``welcome``) and then reads RPF1 frames;
* one :class:`~repro.service.session.Session` per session id, each
  with a **bounded** op queue and one worker task draining it. The
  connection handler ``await``s the queue put, so a slow learner stops
  the handler reading its socket — backpressure reaches the client as
  TCP flow control, never as daemon memory;
* learner work (feeds, model queries) runs on a small thread pool via
  ``run_in_executor``; per-session ops are serialized by the queue, so
  a learner is only ever touched by one thread at a time;
* op failures are contained per session: a feed that raises is rolled
  back by the learner's all-or-nothing ``feed`` envelope, charged to
  the :class:`~repro.service.config.SessionPolicy` retry budget, and
  degraded per policy (reject the append, or close the session) — the
  daemon itself never dies from a session's trace;
* LRU eviction checkpoints idle sessions to the spool when the live
  count exceeds ``max_live``; any later op on the session id resumes
  it transparently (see :mod:`repro.service.eviction`).

Synchronous entry points — :func:`serve_service` for the CLI and
:class:`ServiceThread` for tests and benchmarks — wrap the loop so no
caller above this module touches asyncio.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import tempfile
from concurrent.futures import ThreadPoolExecutor

from repro.analysis.report import dumps_model
from repro.distributed.framing import (
    FrameError,
    HEADER_SIZE,
    decode_frame,
    encode_frame,
    parse_frame_header,
)
from repro.distributed.protocol import parse_address
from repro.service import ops
from repro.service.config import SessionPolicy
from repro.service.eviction import SessionManager
from repro.service.ops import ServiceError
from repro.service.session import Session
from repro.trace.events import Event
from repro.trace.period import Period

#: Op kinds that flow through a session's queue (everything that reads
#: or writes learner state); the rest are handled on the connection.
_SESSION_OPS = frozenset(
    {"append", "events", "query", "profile", "close", "evict"}
)


async def _read_frame(reader: asyncio.StreamReader):
    """One RPF1 frame off an asyncio stream, via the framing helpers."""
    header = await reader.readexactly(HEADER_SIZE)
    body = await reader.readexactly(parse_frame_header(header))
    return decode_frame(header + body)


class _Responder:
    """Serialized frame writes to one connection.

    Session workers and the connection handler may interleave replies
    on the same writer; the lock keeps frames whole. Sends to a client
    that vanished are swallowed — admitted ops still run to completion
    (that is what makes kill-mid-stream recoverable), their acks just
    have nowhere to go.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self._lock = asyncio.Lock()

    async def send(self, payload: dict) -> bool:
        async with self._lock:
            try:
                self._writer.write(encode_frame(payload))
                await self._writer.drain()
                return True
            except (ConnectionError, OSError):
                return False


class ServiceServer:
    """The daemon: accept loop, session workers, eviction pressure."""

    def __init__(
        self,
        policy: SessionPolicy | None = None,
        *,
        name: str | None = None,
        log=lambda line: None,
    ) -> None:
        self.policy = policy or SessionPolicy()
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.log = log
        self.address: str | None = None
        self.manager: SessionManager | None = None
        self._spool_tmp: tempfile.TemporaryDirectory | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._stop: asyncio.Event | None = None
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()

    # -- lifecycle ---------------------------------------------------------

    async def serve(self, host: str, port: int, *, ready=None) -> None:
        """Run the daemon until a ``shutdown`` frame arrives."""
        spool_dir = self.policy.spool_dir
        if spool_dir is None:
            self._spool_tmp = tempfile.TemporaryDirectory(prefix="repro-spool-")
            spool_dir = self._spool_tmp.name
        os.makedirs(spool_dir, exist_ok=True)
        self.manager = SessionManager(self.policy, spool_dir)
        self._pool = ThreadPoolExecutor(
            max_workers=self.policy.feed_threads,
            thread_name_prefix="repro-service-feed",
        )
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(self._handle, host, port)
        bound_host, bound_port = self._server.sockets[0].getsockname()[:2]
        self.address = f"tcp://{bound_host}:{bound_port}"
        self.log(f"serving on {self.address}")
        if ready is not None:
            ready(self.address)
        try:
            await self._stop.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            # wait_closed() does not wait for in-flight connection
            # handlers on 3.11; cancel and reap them explicitly so the
            # loop closes with no pending tasks.
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.gather(
                    *self._connections, return_exceptions=True
                )
            for session in list(self.manager.live.values()):
                if session.worker is not None:
                    session.worker.cancel()
            self._pool.shutdown(wait=False)
            if self._spool_tmp is not None:
                self._spool_tmp.cleanup()

    def daemon_profile(self) -> dict:
        """The daemon's aggregate profile: policy echo + folded counters.

        The machine-readable artifact ``repro serve --profile-json``
        writes on exit; shaped like the pipeline's profile so tooling
        can read both.
        """
        manager = self.manager
        assert manager is not None
        return {
            "server": self.name,
            "policy": {
                "queue_depth": self.policy.queue_depth,
                "max_live": self.policy.max_live,
                "retries": self.policy.retries,
                "degrade": self.policy.degrade,
                "feed_threads": self.policy.feed_threads,
            },
            "live_sessions": len(manager.live),
            "spooled_sessions": len(manager.spooled_ids()),
            "hot_loop": manager.aggregate_counters().as_dict(),
        }

    # -- connection handling -----------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        responder = _Responder(writer)
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            greeting = await _read_frame(reader)
            try:
                ops.expect(greeting, "hello")
            except ServiceError as error:
                await responder.send(ops.error_reply(None, str(error), fatal=True))
                return
            await responder.send(ops.welcome(self.name))
            while True:
                message = await _read_frame(reader)
                if not isinstance(message, dict) or "kind" not in message:
                    await responder.send(
                        ops.error_reply(None, f"malformed frame: {message!r}")
                    )
                    continue
                if await self._dispatch(message, responder):
                    return
        except (EOFError, ConnectionError, OSError, FrameError):
            pass  # client went away; its sessions live on
        except asyncio.CancelledError:
            pass  # daemon shutting down; swallow so the reap is clean
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _dispatch(self, message: dict, responder: _Responder) -> bool:
        """Route one request frame; returns True when the daemon stops."""
        kind = message["kind"]
        manager = self.manager
        assert manager is not None
        if kind == "shutdown":
            await responder.send({"kind": "bye", "server": self.name})
            assert self._stop is not None
            self._stop.set()
            return True
        if kind == "stats":
            await responder.send(manager.stats(self.name))
            return False
        if kind == "open":
            try:
                session, how = manager.open(message)
            except ServiceError as error:
                await responder.send(
                    ops.error_reply(message.get("session"), str(error))
                )
                return False
            self._ensure_worker(session)
            self._apply_pressure(keep=session)
            await responder.send(
                {
                    "kind": "opened",
                    "session": session.session_id,
                    "how": how,
                    "last_seq": session.last_seq,
                    "periods": session.learner._periods,
                }
            )
            return False
        if kind in _SESSION_OPS:
            session_id = message.get("session")
            found = (
                manager.lookup(session_id)
                if isinstance(session_id, str)
                else None
            )
            if found is None:
                await responder.send(
                    ops.error_reply(
                        session_id,
                        f"unknown session {session_id!r}; open it first",
                    )
                )
                return False
            session, _ = found
            self._ensure_worker(session)
            self._apply_pressure(keep=session)
            await session.queue.put((message, responder))
            # Measured after the (possibly blocking) put so the peak
            # reflects real occupancy and never exceeds the bound; the
            # worker may already have drained our item, hence the floor.
            depth = session.queue.qsize() or 1
            if depth > session.queue_peak:
                session.queue_peak = depth
            return False
        await responder.send(
            ops.error_reply(None, f"unknown op kind {kind!r}")
        )
        return False

    def _ensure_worker(self, session: Session) -> None:
        if session.worker is None or session.worker.done():
            session.worker = asyncio.get_running_loop().create_task(
                self._run_session(session),
                name=f"repro-session-{session.session_id}",
            )

    def _apply_pressure(self, keep: Session) -> None:
        """Evict LRU idle sessions while over the live-learner bound."""
        manager = self.manager
        assert manager is not None
        while manager.over_capacity():
            victim = manager.pick_victim(exclude=keep)
            if victim is None:
                return  # everyone is busy; the bound re-applies later
            try:
                victim.queue.put_nowait(
                    ({"kind": "evict", "session": victim.session_id}, None)
                )
            except asyncio.QueueFull:  # pragma: no cover - victim was idle
                return
            # The victim stays in `live` until its worker runs the
            # evict; stop after one victim per open to avoid a stampede.
            return

    # -- session worker ----------------------------------------------------

    async def _run_session(self, session: Session) -> None:
        """Drain one session's op queue until it closes or evicts.

        Every op is individually guarded: an exception is reported to
        the op's responder and charged to the session, never raised
        into the event loop — one crashing session cannot take down
        the daemon.
        """
        while True:
            message, responder = await session.queue.get()
            session.busy = True
            try:
                done = await self._apply(session, message, responder)
            except Exception as error:  # noqa: BLE001 - isolation boundary
                self.log(
                    f"session {session.session_id}: "
                    f"{type(error).__name__}: {error}"
                )
                done = await self._degrade(session, responder, error)
            finally:
                session.busy = False
                session.queue.task_done()
            if done:
                return

    async def _apply(
        self, session: Session, message: dict, responder: _Responder | None
    ) -> bool:
        kind = message["kind"]
        manager = self.manager
        assert manager is not None
        if kind in ("append", "events"):
            return await self._apply_append(session, message, responder)
        if kind == "query":
            model_json = await self._in_pool(
                lambda: dumps_model(session.learner.result().lub())
            )
            await self._reply(
                responder,
                {
                    "kind": "model",
                    "session": session.session_id,
                    "model_json": model_json,
                    "periods": session.learner._periods,
                },
            )
            return False
        if kind == "profile":
            await self._reply(
                responder,
                {"kind": "profile", **session.profile()},
            )
            return False
        if kind == "evict":
            path = manager.evict(session)
            self.log(f"evicted session {session.session_id} to {path}")
            await self._reply(
                responder,
                {"kind": "evicted", "session": session.session_id},
            )
            return True
        if kind == "close":
            model_json = await self._in_pool(
                lambda: dumps_model(session.learner.result().lub())
            )
            periods = session.learner._periods
            manager.discard(session)
            await self._reply(
                responder,
                {
                    "kind": "closed",
                    "session": session.session_id,
                    "model_json": model_json,
                    "periods": periods,
                },
            )
            return True
        await self._reply(
            responder,
            ops.error_reply(
                session.session_id, f"unknown session op {kind!r}"
            ),
        )
        return False

    async def _apply_append(
        self, session: Session, message: dict, responder: _Responder | None
    ) -> bool:
        manager = self.manager
        assert manager is not None
        seq = message.get("seq")
        verdict = session.admit(seq)
        if verdict == "duplicate":
            session.duplicates += 1
            await self._reply(
                responder,
                ops.ack(
                    session.session_id,
                    seq,
                    session.learner._periods,
                    duplicate=True,
                ),
            )
            return False
        if verdict == "gap":
            await self._reply(
                responder,
                ops.error_reply(
                    session.session_id,
                    f"sequence gap: expected {session.last_seq + 1}, "
                    f"got {seq}",
                ),
            )
            return False
        # Admit the frame before feeding: a partially-failed append is
        # reported, not replayed — resending it would double-feed the
        # periods that did absorb.
        session.last_seq = seq
        session.appends += 1
        periods = self._periods_of(session, message)
        for period in periods:
            error = await self._feed_with_retries(session, period)
            if error is not None:
                return await self._degrade(session, responder, error)
        await self._reply(
            responder,
            ops.ack(session.session_id, seq, session.learner._periods),
        )
        return False

    def _periods_of(self, session: Session, message: dict) -> list[Period]:
        """Materialize an append's periods (``append`` or ``events`` form)."""
        if message["kind"] == "append":
            periods = list(message.get("periods") or ())
            for period in periods:
                if not isinstance(period, Period):
                    raise ServiceError(
                        f"append carries a non-Period payload: {period!r}"
                    )
            return periods
        events = message.get("events") or ()
        for event in events:
            if not isinstance(event, Event):
                raise ServiceError(
                    f"events carries a non-Event payload: {event!r}"
                )
        session.pending_events.extend(events)
        if not message.get("end_period"):
            return []
        if not session.pending_events:
            raise ServiceError("end_period with no buffered events")
        period = Period(
            session.pending_events, index=session.learner._periods
        )
        session.pending_events = []
        return [period]

    async def _feed_with_retries(
        self, session: Session, period: Period
    ) -> Exception | None:
        """Feed one period under the retry budget; None on success.

        A failed feed is rolled back by the learner (the all-or-nothing
        ``feed`` contract), so retrying — and giving up — both leave
        the learner exactly as it was.
        """
        manager = self.manager
        assert manager is not None
        attempt = 0
        while True:
            try:
                await self._in_pool(lambda: session.learner.feed(period))
                return None
            except Exception as error:  # noqa: BLE001 - charged to policy
                session.feed_errors += 1
                if attempt >= self.policy.retries:
                    return error
                attempt += 1
                session.feed_retries += 1
                if self.policy.backoff:
                    await asyncio.sleep(self.policy.backoff * attempt)

    async def _degrade(
        self, session: Session, responder: _Responder | None, error: Exception
    ) -> bool:
        """Apply the policy's degradation mode after an exhausted op."""
        manager = self.manager
        assert manager is not None
        if self.policy.degrade == "close":
            manager.discard(session, failed=True)
            await self._reply(
                responder,
                ops.error_reply(
                    session.session_id,
                    f"session closed by degrade policy: {error}",
                    fatal=True,
                ),
            )
            return True
        await self._reply(
            responder,
            ops.error_reply(session.session_id, str(error)),
        )
        return False

    # -- small helpers -----------------------------------------------------

    async def _reply(self, responder: _Responder | None, payload: dict) -> None:
        if responder is not None:
            await responder.send(payload)

    async def _in_pool(self, fn):
        return await asyncio.get_running_loop().run_in_executor(
            self._pool, fn
        )


# ----------------------------------------------------------------------
# Synchronous entry points
# ----------------------------------------------------------------------

def serve_service(
    address: str,
    *,
    policy: SessionPolicy | None = None,
    name: str | None = None,
    log=lambda line: None,
    profile_json: str | None = None,
) -> int:
    """Run the daemon (blocking) until a ``shutdown`` frame; returns 0.

    When *profile_json* is set, the daemon's aggregate profile — the
    folded hot-loop counters of every session it ever held — is written
    there on the way out, shutdown frame or not.
    """
    host, port = parse_address(address)
    server = ServiceServer(policy, name=name, log=log)
    try:
        asyncio.run(server.serve(host, port))
    except KeyboardInterrupt:
        log("interrupted; shutting down")
    finally:
        if profile_json is not None and server.manager is not None:
            with open(profile_json, "w", encoding="utf-8") as stream:
                json.dump(server.daemon_profile(), stream, indent=2)
    return 0


class ServiceThread:
    """An in-process daemon for tests and benchmarks.

    The loop runs in a dedicated thread; ``address`` blocks until the
    listening socket is bound (pass port 0 for an OS-assigned port),
    and ``stop()`` shuts the loop down and joins the thread. The
    service holds no process pools, so in-process hosting is safe —
    unlike worker daemons, which must run in subprocesses.
    """

    def __init__(
        self,
        policy: SessionPolicy | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        name: str | None = None,
    ) -> None:
        import threading

        self.server = ServiceServer(policy, name=name)
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(
            target=self._run, args=(host, port), name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise ServiceError("service thread failed to bind in time")

    def _run(self, host: str, port: int) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(
                self.server.serve(
                    host, port, ready=lambda addr: self._ready.set()
                )
            )
        finally:
            loop.close()

    @property
    def address(self) -> str:
        assert self.server.address is not None
        return self.server.address

    def stop(self) -> None:
        loop, stop = self._loop, self.server._stop
        if loop is not None and stop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # loop already closed between the check and the call
        self._thread.join(timeout=30.0)


__all__ = ["ServiceServer", "ServiceThread", "serve_service"]
