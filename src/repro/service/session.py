"""One live streaming session: settings, ledger, learner, spool form.

A session is the service's unit of isolation. It owns exactly one
incremental learner (built through the pipeline's session-mode config,
so a session and a ``repro learn`` run with the same settings are the
same computation), a contiguous sequence ledger for exactly-once
append admission, and a bounded asyncio queue that every op for the
session flows through — appends, queries, eviction, close — which is
what serializes learner access and carries backpressure to the socket.

Sessions round-trip through the *spool*: a JSON file holding the
kernel-agnostic learner checkpoint (:mod:`repro.core.checkpoint`) plus
the session-level state the checkpoint does not know about — the
settings, the sequence ledger, buffered partial-period events, and the
service counters. Eviction writes it, a later ``open`` of the same
session id reads it back; the learner that resumes is bit-identical in
model terms (the checkpoint contract), so clients cannot tell an
evicted-and-resumed session from one that stayed live.
"""

from __future__ import annotations

import asyncio

from repro.core.batch import resolve_kernel
from repro.core.checkpoint import checkpoint_from_dict, checkpoint_to_dict
from repro.core.instrumentation import HotLoopCounters
from repro.core.learner import make_learner
from repro.pipeline.config import PipelineConfig
from repro.service.config import SessionPolicy
from repro.service.ops import ServiceError
from repro.trace.events import Event, EventKind

#: Spool file format marker and version.
SPOOL_FORMAT = "repro-service-session"
SPOOL_VERSION = 1


class SessionSettings:
    """The learner-shaping half of an ``open`` op, hashable and spoolable."""

    __slots__ = ("tasks", "bound", "tolerance", "kernel", "format")

    def __init__(
        self,
        tasks: tuple[str, ...],
        bound: int | None = None,
        tolerance: float = 0.0,
        kernel: str = "auto",
        format: str | None = None,
    ) -> None:
        self.tasks = tuple(tasks)
        self.bound = bound
        self.tolerance = tolerance
        self.kernel = kernel
        self.format = format

    @classmethod
    def from_open(cls, message: dict) -> "SessionSettings":
        tasks = message.get("tasks") or ()
        if not tasks:
            raise ServiceError("open requires a non-empty task set")
        return cls(
            tasks=tuple(tasks),
            bound=message.get("bound"),
            tolerance=float(message.get("tolerance", 0.0)),
            kernel=message.get("kernel", "auto"),
            format=message.get("format"),
        )

    def pipeline_config(self) -> PipelineConfig:
        """The session-mode pipeline view of these settings."""
        return PipelineConfig.for_session(
            format=self.format,
            bound=self.bound,
            tolerance=self.tolerance,
            kernel=self.kernel,
        )

    def make_learner(self):
        config = self.pipeline_config()
        return make_learner(
            self.tasks, config.bound, config.tolerance, config.kernel
        )

    def to_dict(self) -> dict:
        return {
            "tasks": list(self.tasks),
            "bound": self.bound,
            "tolerance": self.tolerance,
            "kernel": self.kernel,
            "format": self.format,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SessionSettings":
        return cls(
            tasks=tuple(data["tasks"]),
            bound=data["bound"],
            tolerance=data["tolerance"],
            kernel=data["kernel"],
            format=data.get("format"),
        )


def _events_to_wire(events: list[Event]) -> list[list]:
    return [[e.time, e.kind.value, e.subject] for e in events]


def _events_from_wire(rows: list) -> list[Event]:
    return [Event(row[0], EventKind(row[1]), row[2]) for row in rows]


class Session:
    """Live state of one streaming session."""

    def __init__(
        self,
        session_id: str,
        settings: SessionSettings,
        policy: SessionPolicy,
        learner=None,
    ) -> None:
        self.session_id = session_id
        self.settings = settings
        self.policy = policy
        self.learner = learner if learner is not None else settings.make_learner()
        #: The concrete kernel backing the learner; checkpoint resume
        #: needs the resolved name, not ``"auto"``.
        self.resolved_kernel = resolve_kernel(settings.kernel)
        #: Highest admitted append sequence number (the ledger).
        self.last_seq = 0
        #: Events buffered by ``events`` ops until an ``end_period``.
        self.pending_events: list[Event] = []
        #: Every op for this session flows through here; the bound is
        #: the backpressure contract.
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=policy.queue_depth)
        #: Set while the worker is mid-op; an idle session has an empty
        #: queue and ``busy`` false — only those are evictable.
        self.busy = False
        #: LRU stamp: a monotone tick from the manager, not wall clock.
        self.lru_tick = 0
        self.worker: asyncio.Task | None = None
        # Per-session service counters (mirrored into profile output).
        self.appends = 0
        self.duplicates = 0
        self.feed_errors = 0
        self.feed_retries = 0
        self.resumed = 0
        self.queue_peak = 0

    # -- ledger ------------------------------------------------------------

    def admit(self, seq) -> str:
        """Classify an append's sequence number: next, duplicate, or gap."""
        if not isinstance(seq, int) or seq < 1:
            raise ServiceError(f"append seq must be a positive int, got {seq!r}")
        if seq <= self.last_seq:
            return "duplicate"
        if seq == self.last_seq + 1:
            return "next"
        return "gap"

    # -- profile -----------------------------------------------------------

    def hot_loop(self) -> HotLoopCounters:
        """Learner counters with this session's service counts stamped in."""
        counters = self.learner._counters.copy()
        counters.session_appends = self.appends
        counters.session_duplicates = self.duplicates
        counters.session_feed_errors = self.feed_errors
        counters.session_feed_retries = self.feed_retries
        counters.session_queue_peak = self.queue_peak
        return counters

    def profile(self) -> dict:
        """A per-session snapshot shaped like ``--profile-json`` output."""
        learner = self.learner
        return {
            "session": self.session_id,
            "learn": {
                "algorithm": "exact" if self.settings.bound is None else "heuristic",
                "bound": self.settings.bound,
                "workers": 1,
                "kernel": self.resolved_kernel,
                "periods": learner._periods,
                "messages": learner._messages,
                "peak_hypotheses": learner._peak,
                "merge_count": getattr(learner, "_merges", 0),
                "elapsed_seconds": learner._elapsed,
            },
            "service": {
                "last_seq": self.last_seq,
                "appends": self.appends,
                "duplicates": self.duplicates,
                "feed_errors": self.feed_errors,
                "feed_retries": self.feed_retries,
                "resumed": self.resumed,
                "queue_peak": self.queue_peak,
                "pending_events": len(self.pending_events),
            },
            "hot_loop": self.hot_loop().as_dict(),
        }

    # -- spool round-trip --------------------------------------------------

    def spool_state(self) -> dict:
        """The JSON-ready spool form: checkpoint + session metadata."""
        return {
            "format": SPOOL_FORMAT,
            "version": SPOOL_VERSION,
            "session": self.session_id,
            "settings": self.settings.to_dict(),
            "last_seq": self.last_seq,
            "resumed": self.resumed,
            "pending_events": _events_to_wire(self.pending_events),
            "checkpoint": checkpoint_to_dict(self.learner),
        }

    @classmethod
    def from_spool(
        cls, data: dict, policy: SessionPolicy
    ) -> "Session":
        if data.get("format") != SPOOL_FORMAT:
            raise ServiceError(
                f"not a session spool file: format={data.get('format')!r}"
            )
        if data.get("version") != SPOOL_VERSION:
            raise ServiceError(
                f"unsupported spool version {data.get('version')!r}"
            )
        settings = SessionSettings.from_dict(data["settings"])
        learner = checkpoint_from_dict(
            data["checkpoint"], kernel=resolve_kernel(settings.kernel)
        )
        session = cls(data["session"], settings, policy, learner=learner)
        session.last_seq = int(data["last_seq"])
        session.resumed = int(data.get("resumed", 0)) + 1
        session.pending_events = _events_from_wire(data.get("pending_events", []))
        return session


__all__ = [
    "SPOOL_FORMAT",
    "SPOOL_VERSION",
    "Session",
    "SessionSettings",
]
