"""The long-lived learning service: many streaming sessions, one daemon.

``repro serve tcp://HOST:PORT`` turns the batch learner into an
always-on system: independent clients stream trace periods into live
sessions, query the current model at any point, and survive eviction,
reconnects, and their own faults — with every session's model
bit-identical to a ``repro learn`` run over the same periods.

Public surface:

* :func:`~repro.service.server.serve_service` — the blocking daemon
  entry point (what the CLI calls).
* :class:`~repro.service.server.ServiceThread` — an in-process daemon
  for tests and benchmarks.
* :class:`~repro.service.client.ServiceClient` — the synchronous
  client library.
* :class:`~repro.service.config.SessionPolicy` — queue bounds,
  eviction pressure, retry/degrade policy.

Everything here is the asyncio side of the RL008 boundary; callers
use the synchronous wrappers and never touch an event loop.
"""

from repro.service.client import ServiceClient
from repro.service.config import SessionPolicy
from repro.service.ops import ServiceError
from repro.service.server import ServiceServer, ServiceThread, serve_service

__all__ = [
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ServiceThread",
    "SessionPolicy",
    "serve_service",
]
