"""Session registry with LRU eviction to an on-disk spool.

The daemon promises bounded memory: at most ``SessionPolicy.max_live``
learners live at once. The manager keeps every live session stamped
with a monotone LRU tick (an integer counter, not wall clock — ticks
are deterministic under test), and when an ``open`` would exceed the
bound it picks the least-recently-used *idle* session as the eviction
victim. Busy sessions — queue non-empty or mid-op — are never evicted,
so the bound is soft under pressure spikes and re-establishes itself
as queues drain.

Eviction is a checkpoint, not a loss: the victim's spool file carries
the kernel-agnostic learner checkpoint plus the session's ledger and
buffered events, and the next ``open`` of that session id resumes it
transparently. A ``close`` deletes the spool; a daemon restart with
the same spool directory can resume every evicted session.
"""

from __future__ import annotations

import json
import os

from repro.core.instrumentation import HotLoopCounters
from repro.service.config import SessionPolicy
from repro.service.ops import ServiceError
from repro.service.session import Session, SessionSettings


def spool_filename(session_id: str) -> str:
    """A filesystem-safe, collision-free name for a session's spool file.

    Alphanumerics, dash, and underscore pass through; every other
    character is percent-encoded, so distinct ids never collide.
    """
    encoded = "".join(
        c if c.isalnum() or c in "-_" else f"%{ord(c):02x}"
        for c in session_id
    )
    return f"{encoded}.session.json"


class SessionManager:
    """Owns the live-session table, the LRU order, and the spool."""

    def __init__(self, policy: SessionPolicy, spool_dir: str) -> None:
        self.policy = policy
        self.spool_dir = spool_dir
        self.live: dict[str, Session] = {}
        #: Daemon-level aggregate: service events plus the folded
        #: counters of every session that closed, failed, or evicted.
        self.counters = HotLoopCounters()
        self._tick = 0

    # -- LRU ---------------------------------------------------------------

    def touch(self, session: Session) -> None:
        self._tick += 1
        session.lru_tick = self._tick

    def pick_victim(self, exclude: Session | None = None) -> Session | None:
        """The least-recently-used idle session, or ``None``.

        Idle means an empty queue and no op mid-flight; evicting a busy
        session would drop admitted-but-unprocessed appends.
        """
        candidates = [
            s
            for s in self.live.values()
            if s is not exclude and not s.busy and s.queue.empty()
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda s: s.lru_tick)

    def over_capacity(self) -> bool:
        return len(self.live) > self.policy.max_live

    # -- open / resume -----------------------------------------------------

    def lookup(self, session_id: str) -> tuple[Session, str] | None:
        """Find a session by id: live (``"attached"``) or spooled
        (``"resumed"`` — brought back transparently); ``None`` when the
        id is unknown. Any successful lookup refreshes the LRU stamp.
        """
        existing = self.live.get(session_id)
        if existing is not None:
            self.touch(existing)
            return existing, "attached"
        spool = self.spool_path(session_id)
        if os.path.exists(spool):
            with open(spool, "r", encoding="utf-8") as stream:
                data = json.load(stream)
            session = Session.from_spool(data, self.policy)
            self.live[session_id] = session
            self.touch(session)
            self.counters.sessions_resumed += 1
            return session, "resumed"
        return None

    def open(self, message: dict) -> tuple[Session, str]:
        """Handle an ``open``: attach, resume from spool, or create.

        Returns the session and what happened (``"attached"`` /
        ``"resumed"`` / ``"created"``); the caller starts a worker task
        for anything that was not already live.
        """
        session_id = message.get("session")
        if not isinstance(session_id, str) or not session_id:
            raise ServiceError("open requires a non-empty session id")
        found = self.lookup(session_id)
        if found is not None:
            return found
        settings = SessionSettings.from_open(message)
        session = Session(session_id, settings, self.policy)
        self.live[session_id] = session
        self.touch(session)
        self.counters.sessions_opened += 1
        return session, "created"

    # -- spool -------------------------------------------------------------

    def spool_path(self, session_id: str) -> str:
        return os.path.join(self.spool_dir, spool_filename(session_id))

    def evict(self, session: Session) -> str:
        """Checkpoint *session* to the spool and drop it from memory."""
        path = self.spool_path(session.session_id)
        state = session.spool_state()
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as stream:
            json.dump(state, stream)
        os.replace(tmp, path)
        self._fold(session)
        self.counters.sessions_evicted += 1
        self.live.pop(session.session_id, None)
        return path

    def discard(self, session: Session, *, failed: bool = False) -> None:
        """Remove a closed (or degraded) session and its spool file."""
        self._fold(session)
        if failed:
            self.counters.sessions_failed += 1
        else:
            self.counters.sessions_closed += 1
        self.live.pop(session.session_id, None)
        spool = self.spool_path(session.session_id)
        if os.path.exists(spool):
            os.remove(spool)

    def _fold(self, session: Session) -> None:
        """Fold a departing session's counters into the daemon aggregate."""
        self.counters.merge(session.hot_loop())

    # -- daemon stats ------------------------------------------------------

    def spooled_ids(self) -> list[str]:
        if not os.path.isdir(self.spool_dir):
            return []
        return sorted(
            name[: -len(".session.json")]
            for name in os.listdir(self.spool_dir)
            if name.endswith(".session.json")
        )

    def aggregate_counters(self) -> HotLoopCounters:
        """Daemon totals: departed sessions plus everything still live."""
        total = self.counters.copy()
        for session in self.live.values():
            total.merge(session.hot_loop())
        return total

    def stats(self, server: str) -> dict:
        return {
            "kind": "stats",
            "server": server,
            "live_sessions": len(self.live),
            "spooled_sessions": len(self.spooled_ids()),
            "hot_loop": self.aggregate_counters().as_dict(),
        }


__all__ = ["SessionManager", "spool_filename"]
