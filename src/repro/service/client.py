"""Synchronous client library for the session service.

A :class:`ServiceClient` is a plain blocking-socket peer of the
asyncio daemon — callers above the service boundary stay synchronous
(lint rule RL008). One client drives one session at a time; the client
tracks the session's settings and append-sequence ladder so it can
reconnect, re-open (which attaches or resumes), and re-send unacked
frames — the server's ledger acks re-sent frames as duplicates without
feeding them, which is what makes delivery exactly-once end to end.

Chaos: constructing the client with a ``chaos_index`` arms the
deterministic ``REPRO_CHAOS`` plan at the append send site (see
:func:`repro.distributed.chaos.client_faults`): ``disconnect`` closes
the socket instead of sending and recovers through the resend path,
``drop`` skips a send attempt, ``duplicate`` sends the frame twice,
``slow`` stalls before sending. Faults are keyed by (index, delivery
attempt), so every chaos run is reproducible.
"""

from __future__ import annotations

import socket
import time

from repro.distributed.chaos import client_faults
from repro.distributed.framing import FrameError, recv_frame, send_frame
from repro.distributed.protocol import parse_address
from repro.service import ops
from repro.service.ops import ServiceError
from repro.trace.formats import resolve_format

#: Periods per append frame when streaming a whole file.
DEFAULT_BATCH = 16


class ServiceClient:
    """One connection to a service daemon, driving one session."""

    def __init__(
        self,
        address: str,
        *,
        name: str = "client",
        timeout: float = 30.0,
        chaos_index: int | None = None,
    ) -> None:
        self.address = address
        self.host, self.port = parse_address(address)
        self.name = name
        self.timeout = timeout
        self.chaos_index = chaos_index
        self._sock: socket.socket | None = None
        self._session_id: str | None = None
        self._open_message: dict | None = None
        self._next_seq = 1
        self._attempts: dict[int, int] = {}
        self.reconnects = 0

    # -- connection --------------------------------------------------------

    def connect(self) -> dict:
        """Dial and handshake; returns the server's ``welcome``."""
        self.close()
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        send_frame(self._sock, ops.hello(self.name))
        reply, _ = recv_frame(self._sock)
        return ops.expect(reply, "welcome")

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _ensure(self) -> socket.socket:
        if self._sock is None:
            self.connect()
            if self._open_message is not None:
                self._reopen()
        assert self._sock is not None
        return self._sock

    def _reconnect(self) -> None:
        """Reconnect and re-attach the session after a lost connection."""
        self.reconnects += 1
        self.close()
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                self.connect()
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)
        if self._open_message is not None:
            self._reopen()

    def _reopen(self) -> None:
        assert self._open_message is not None and self._sock is not None
        send_frame(self._sock, self._open_message)
        reply, _ = recv_frame(self._sock)
        opened = ops.expect(reply, "opened")
        # The server's ledger is the truth: anything at or below its
        # last_seq was admitted before the connection died.
        self._next_seq = max(self._next_seq, opened["last_seq"] + 1)

    def _rpc(self, payload: dict, expected: str) -> dict:
        """Send one request and read its reply, reconnecting on loss."""
        while True:
            sock = self._ensure()
            try:
                send_frame(sock, payload)
                reply, _ = recv_frame(sock)
            except (OSError, EOFError, FrameError):
                self._reconnect()
                continue
            return ops.expect(reply, expected)

    # -- session lifecycle -------------------------------------------------

    def open_session(
        self,
        session_id: str,
        tasks=(),
        *,
        bound: int | None = None,
        tolerance: float = 0.0,
        kernel: str = "auto",
        format: str | None = None,
    ) -> dict:
        """Open (create, attach, or resume) a session; returns ``opened``."""
        message = ops.open_op(
            session_id,
            tasks,
            bound=bound,
            tolerance=tolerance,
            kernel=kernel,
            format=format,
        )
        opened = self._rpc(message, "opened")
        self._session_id = session_id
        self._open_message = message
        self._next_seq = opened["last_seq"] + 1
        return opened

    def _require_session(self) -> str:
        if self._session_id is None:
            raise ServiceError("no session open on this client")
        return self._session_id

    def query_model(self) -> str:
        """The session's current model as JSON text."""
        reply = self._rpc(ops.query_op(self._require_session()), "model")
        return reply["model_json"]

    def profile(self) -> dict:
        """A ``--profile-json``-shaped snapshot of the session."""
        return self._rpc(ops.profile_op(self._require_session()), "profile")

    def evict_session(self) -> dict:
        """Checkpoint the session to the server's spool and drop it live.

        The session id stays re-openable: the next op on it (or an
        explicit :meth:`open_session`) resumes from the checkpoint.
        """
        return self._rpc(ops.evict_op(self._require_session()), "evicted")

    def close_session(self) -> dict:
        """End the session; the reply carries the final model JSON."""
        reply = self._rpc(ops.close_op(self._require_session()), "closed")
        self._session_id = None
        self._open_message = None
        self._next_seq = 1
        self._attempts.clear()
        return reply

    # -- appends (seq-laddered, chaos-armed) -------------------------------

    def append_periods(self, periods, *, seq: int | None = None) -> dict:
        """Stream a batch of periods; returns the server's ``ack``.

        An explicit *seq* re-sends a ladder position deliberately
        (tests use this to exercise the duplicate path); by default the
        client stamps the next ladder position and advances on ack.
        """
        session = self._require_session()
        explicit = seq is not None
        stamp = seq if explicit else self._next_seq
        ack = self._deliver(ops.append_op(session, stamp, list(periods)))
        if not explicit:
            self._next_seq = max(self._next_seq, stamp + 1)
        return ack

    def append_events(self, events, *, end_period: bool = False) -> dict:
        """Stream raw events; ``end_period`` closes them into a period."""
        session = self._require_session()
        stamp = self._next_seq
        ack = self._deliver(
            ops.events_op(session, stamp, list(events), end_period=end_period)
        )
        self._next_seq = max(self._next_seq, stamp + 1)
        return ack

    def _deliver(self, payload: dict) -> dict:
        """Send one append frame to an ack, surviving chaos and loss."""
        seq = payload["seq"]
        while True:
            # Attempts are zero-based, matching the shard executors: a
            # default ``N = 1`` fault hits attempt 0 (the first
            # delivery) and lets the resend through.
            attempt = self._attempts.get(seq, 0)
            self._attempts[seq] = attempt + 1
            faults = (
                client_faults(self.chaos_index, attempt)
                if self.chaos_index is not None
                else ()
            )
            kinds = {spec.kind for spec in faults}
            for spec in faults:
                if spec.kind == "slow":
                    time.sleep(spec.param)
            if "disconnect" in kinds:
                self._reconnect()
                continue
            if "drop" in kinds:
                continue  # this delivery attempt never happens
            sock = self._ensure()
            try:
                send_frame(sock, payload)
                if "duplicate" in kinds:
                    send_frame(sock, payload)
                reply, _ = recv_frame(sock)
                ack = ops.expect(reply, "ack")
                if "duplicate" in kinds:
                    extra, _ = recv_frame(sock)
                    ops.expect(extra, "ack")
                return ack
            except (OSError, EOFError, FrameError):
                self._reconnect()
                continue

    # -- whole-file streaming ----------------------------------------------

    def stream_file(
        self,
        session_id: str,
        path: str,
        *,
        format: str | None = None,
        bound: int | None = None,
        tolerance: float = 0.0,
        kernel: str = "auto",
        batch: int = DEFAULT_BATCH,
    ) -> dict:
        """Open a session for *path* and stream its periods in batches.

        The trace is parsed client-side through the same format
        registry ``repro learn`` uses, so a streamed session and a
        batch run see identical periods. Returns the final ``ack``
        (or the ``opened`` reply for an empty trace).
        """
        fmt = resolve_format(format, path)
        tasks, periods = fmt.open_periods(path)
        try:
            reply = self.open_session(
                session_id,
                tasks,
                bound=bound,
                tolerance=tolerance,
                kernel=kernel,
                format=format,
            )
            pending = []
            for period in periods:
                pending.append(period)
                if len(pending) >= batch:
                    reply = self.append_periods(pending)
                    pending = []
            if pending:
                reply = self.append_periods(pending)
            return reply
        finally:
            closer = getattr(periods, "close", None)
            if closer is not None:
                closer()

    # -- daemon ops --------------------------------------------------------

    def daemon_stats(self) -> dict:
        return self._rpc(ops.stats_op(), "stats")

    def shutdown_daemon(self) -> dict:
        reply = self._rpc(ops.shutdown_op(), "bye")
        self.close()
        return reply

    def __enter__(self) -> "ServiceClient":
        self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["DEFAULT_BATCH", "ServiceClient"]
