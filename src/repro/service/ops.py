"""The session protocol's op vocabulary: frame payload shapes.

Every frame between a client and the service daemon is a dict with a
``kind`` key, carried inside the distributed runtime's RPF1 frames
(:mod:`repro.distributed.framing` — lint rule RL007 lets the service
share that boundary). This module is the one place payload shapes are
spelled out; the server and the client library both build and check
frames through it, so the protocol cannot drift apart silently.

Request kinds and their replies::

    hello               -> welcome
    open                -> opened        (create, attach, or resume)
    append / events     -> ack | error   (seq-laddered, exactly-once)
    query               -> model
    profile             -> profile
    evict               -> evicted
    close               -> closed
    stats               -> stats
    shutdown            -> bye

Appends carry a per-session sequence number, a contiguous ladder
starting at 1. The server's ledger admits ``last_seq + 1``, acks
anything at or below ``last_seq`` as a duplicate without feeding it
(that is what makes client resends after a reconnect exactly-once),
and errors on a gap.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import ReproError

#: Version of the session protocol; mismatches refuse at handshake.
SERVICE_PROTOCOL = 1


class ServiceError(ReproError):
    """A protocol violation or a server-reported op failure."""


# ----------------------------------------------------------------------
# Request builders (client side)
# ----------------------------------------------------------------------

def hello(client: str) -> dict:
    return {"kind": "hello", "protocol": SERVICE_PROTOCOL, "client": client}


def open_op(
    session: str,
    tasks: Iterable[str],
    *,
    bound: int | None = None,
    tolerance: float = 0.0,
    kernel: str = "auto",
    format: str | None = None,
) -> dict:
    return {
        "kind": "open",
        "session": session,
        "tasks": tuple(tasks),
        "bound": bound,
        "tolerance": tolerance,
        "kernel": kernel,
        "format": format,
    }


def append_op(session: str, seq: int, periods: list) -> dict:
    return {"kind": "append", "session": session, "seq": seq, "periods": periods}


def events_op(
    session: str, seq: int, events: list, *, end_period: bool = False
) -> dict:
    return {
        "kind": "events",
        "session": session,
        "seq": seq,
        "events": events,
        "end_period": end_period,
    }


def query_op(session: str) -> dict:
    return {"kind": "query", "session": session}


def profile_op(session: str) -> dict:
    return {"kind": "profile", "session": session}


def evict_op(session: str) -> dict:
    return {"kind": "evict", "session": session}


def close_op(session: str) -> dict:
    return {"kind": "close", "session": session}


def stats_op() -> dict:
    return {"kind": "stats"}


def shutdown_op() -> dict:
    return {"kind": "shutdown"}


# ----------------------------------------------------------------------
# Reply builders (server side)
# ----------------------------------------------------------------------

def welcome(server: str) -> dict:
    return {"kind": "welcome", "protocol": SERVICE_PROTOCOL, "server": server}


def ack(session: str, seq: int, periods: int, *, duplicate: bool = False) -> dict:
    return {
        "kind": "ack",
        "session": session,
        "seq": seq,
        "periods": periods,
        "duplicate": duplicate,
    }


def error_reply(
    session: str | None, message: str, *, fatal: bool = False
) -> dict:
    return {"kind": "error", "session": session, "error": message, "fatal": fatal}


# ----------------------------------------------------------------------
# Checking
# ----------------------------------------------------------------------

def expect(message: Any, kind: str) -> dict:
    """Validate a reply frame: the right shape, version, and *kind*.

    A server-side ``error`` reply is surfaced as a raised
    :class:`ServiceError` carrying the server's message, so client call
    sites read straight-line.
    """
    if not isinstance(message, dict) or "kind" not in message:
        raise ServiceError(f"malformed service frame: {message!r}")
    if message["kind"] == "error":
        raise ServiceError(str(message.get("error", "unspecified server error")))
    if message["kind"] != kind:
        raise ServiceError(
            f"expected a {kind!r} frame, got {message['kind']!r}"
        )
    protocol = message.get("protocol", SERVICE_PROTOCOL)
    if protocol != SERVICE_PROTOCOL:
        raise ServiceError(
            f"service protocol mismatch: peer speaks {protocol}, "
            f"this side speaks {SERVICE_PROTOCOL}"
        )
    return message


__all__ = [
    "SERVICE_PROTOCOL",
    "ServiceError",
    "ack",
    "append_op",
    "close_op",
    "error_reply",
    "events_op",
    "evict_op",
    "expect",
    "hello",
    "open_op",
    "profile_op",
    "query_op",
    "shutdown_op",
    "stats_op",
    "welcome",
]
