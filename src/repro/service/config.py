"""Session-service policy: queue bounds, eviction pressure, degradation.

One frozen :class:`SessionPolicy` drives the whole daemon, mirroring how
:class:`~repro.core.shardexec.ShardPolicy` drives the shard runtime —
and deliberately reusing its vocabulary: ``retries`` is a deterministic
re-attempt budget, ``backoff`` spaces the attempts, and ``degrade``
names what happens when the budget runs out. The difference is the
failure domain: a shard failure is retried because pool children die
for environmental reasons; a session feed failure is usually a *trace*
problem (an unknown task, an empty hypothesis space), so the default
degradation rejects the offending append and keeps the session alive
rather than tearing anything down.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Degradation modes when an append's feed retries are exhausted.
#: ``reject`` errors the append and keeps the session (the learner is
#: untouched by the failed period — the all-or-nothing ``feed``
#: contract); ``close`` tears the session down and reports it failed.
DEGRADE_MODES = ("reject", "close")


@dataclass(frozen=True)
class SessionPolicy:
    """Fault-tolerance and resource policy for the session service.

    Attributes
    ----------
    queue_depth:
        Bound on each session's ingest queue, in ops. A full queue
        suspends the connection's frame reader — backpressure reaches
        the client as an unread socket, so a slow learner can never
        grow daemon memory.
    max_live:
        Live learners held in memory before LRU eviction starts
        checkpointing idle sessions to the spool. Busy sessions are
        never evicted, so the live count can transiently exceed this.
    retries:
        Feed re-attempts per period after a rolled-back failure, before
        the ``degrade`` mode applies.
    backoff:
        Seconds slept between those attempts (scaled by the attempt
        number, like the shard runtime's deterministic backoff).
    degrade:
        One of :data:`DEGRADE_MODES`.
    feed_threads:
        Worker threads feeding learners; sessions are serialized
        individually, so this bounds cross-session feed concurrency.
    spool_dir:
        Directory for eviction checkpoints. ``None`` lets the server
        create a private temporary directory for the daemon's lifetime.
    """

    queue_depth: int = 8
    max_live: int = 64
    retries: int = 1
    backoff: float = 0.0
    degrade: str = "reject"
    feed_threads: int = 4
    spool_dir: str | None = None

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        if self.max_live < 1:
            raise ValueError("max_live must be at least 1")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.backoff < 0:
            raise ValueError("backoff must be non-negative")
        if self.degrade not in DEGRADE_MODES:
            raise ValueError(
                f"degrade must be one of {DEGRADE_MODES}, got {self.degrade!r}"
            )
        if self.feed_threads < 1:
            raise ValueError("feed_threads must be at least 1")


__all__ = ["DEGRADE_MODES", "SessionPolicy"]
