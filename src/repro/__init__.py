"""repro: automatic model generation for black-box real-time systems.

A full reproduction of Feng, Wang, Zheng, Kanajan & Seshia, *Automatic
Model Generation for Black Box Real-Time Systems* (DATE 2007):
version-space learning of task dependency graphs from bus execution
traces, together with the substrates the paper's evaluation depends on —
a periodic multi-ECU/CAN execution simulator, a black-box bus logger, and
the downstream analyses (node classification, property proving, latency
tightening, state-space reduction).

Quickstart::

    from repro import learn_dependencies, simulate_trace
    from repro.systems import simple_four_task_design

    trace = simulate_trace(simple_four_task_design(), period_count=20)
    result = learn_dependencies(trace, bound=32)
    print(result.lub().to_table())

Packages:

* :mod:`repro.core` — the learning algorithms (paper Sections 2-4);
* :mod:`repro.trace` — events, periods, traces, I/O, validation;
* :mod:`repro.systems` — design models and reference systems;
* :mod:`repro.sim` — the execution simulator and bus logger;
* :mod:`repro.analysis` — downstream analyses over learned models;
* :mod:`repro.baselines` — process-mining and static-analysis baselines;
* :mod:`repro.theory` — executable theorem checks and the NP-hardness
  construction;
* :mod:`repro.bench` — benchmark workloads and reporting.
"""

from repro.core import (
    BoundedLearner,
    CoExecutionStats,
    DependencyFunction,
    DepValue,
    ExactLearner,
    Hypothesis,
    LearningResult,
    learn_bounded,
    learn_dependencies,
    learn_exact,
    make_learner,
    matches_period,
    matches_trace,
)
from repro.errors import (
    AnalysisError,
    EmptyHypothesisSpaceError,
    LearningError,
    ModelError,
    ReproError,
    SimulationError,
    TraceError,
    TraceParseError,
)
from repro.sim import SimulatorConfig, simulate_trace
from repro.trace import Period, Trace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # learning
    "DepValue",
    "DependencyFunction",
    "Hypothesis",
    "CoExecutionStats",
    "LearningResult",
    "ExactLearner",
    "BoundedLearner",
    "learn_dependencies",
    "learn_exact",
    "learn_bounded",
    "make_learner",
    "matches_period",
    "matches_trace",
    # trace and simulation
    "Trace",
    "Period",
    "simulate_trace",
    "SimulatorConfig",
    # errors
    "ReproError",
    "TraceError",
    "TraceParseError",
    "ModelError",
    "SimulationError",
    "LearningError",
    "EmptyHypothesisSpaceError",
    "AnalysisError",
]
