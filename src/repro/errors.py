"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to distinguish the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class TraceError(ReproError):
    """A trace is malformed or violates the paper's trace assumptions.

    Examples: a task starting twice in one period, a message whose falling
    edge precedes its rising edge, or a message crossing a period boundary.
    """


class TraceParseError(TraceError):
    """A textual or CSV trace could not be parsed."""

    def __init__(self, message: str, line_number: int | None = None):
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class ModelError(ReproError):
    """A system design model is structurally invalid.

    Examples: a message edge referring to an unknown task, a cyclic design
    graph (the control-flow MOC requires acyclic periods), or duplicate task
    names.
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent state.

    This indicates a bug in a scenario definition, e.g. a period too short
    for all scheduled work so that a message would cross the boundary.
    """


class LearningError(ReproError):
    """The learning algorithm cannot continue."""


class ShardExecutionError(LearningError):
    """A shard of a parallel learn failed beyond the recovery policy.

    Raised by the fault-tolerant shard runtime
    (:mod:`repro.core.shardexec`) when a shard exhausts its retry and
    split budgets — or the process pool is irrecoverably broken — and
    the policy forbids degrading to in-process sequential learning
    (``degrade='fail'``). The message always names the failing shard's
    period range and attempt count, never a bare ``BrokenProcessPool``.
    """


class EmptyHypothesisSpaceError(LearningError):
    """Every hypothesis died: the trace is inconsistent with the MOC.

    Mirrors the paper's Section 3.1 failure mode: either the instances
    contain errors, or the generalization language is not expressive enough
    to describe the observed behaviour.
    """

    def __init__(self, period_index: int, message_index: int | None = None):
        self.period_index = period_index
        self.message_index = message_index
        detail = f"period {period_index}"
        if message_index is not None:
            detail += f", message {message_index}"
        super().__init__(
            "hypothesis space became empty while processing "
            f"{detail}: the trace violates the model-of-computation "
            "assumptions or the hypothesis lattice is not expressive enough"
        )


class AnalysisError(ReproError):
    """A downstream analysis was asked an ill-posed question.

    Examples: a latency query over tasks that never execute, or a property
    query naming an unknown task.
    """
