"""Candidate sender-receiver computation ``A_m`` (paper Section 3.1).

The bus logger gives no information about a message's sender or receiver;
the learner enumerates every pair that is *temporally possible*:

* the sender must be a task that executed in the period and whose end event
  is no later than the message's rising edge — the MOC sends messages only
  when the sender task finishes (Section 2.1);
* the receiver must be a task that executed in the period and whose start
  event is no earlier than the message's falling edge — the firing rule is
  the arrival of all required inputs, so a task cannot consume a message
  after it has already started;
* sender and receiver are distinct.

These are exactly the constraints that produce the paper's worked example:
in period 1 of Figure 2, ``A_m1 = {(t1, t2), (t1, t4)}`` and
``A_m2 = {(t1, t4), (t2, t4)}``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from repro.trace.events import MessageOccurrence, TaskExecution
from repro.trace.period import Period


class CandidateCache:
    """Memo of ``candidate_pairs`` keyed by ``(period, message, tolerance)``.

    ``A_m`` is a pure function of the period's executions, the message
    occurrence and the tolerance — but it used to be recomputed on every
    consultation: once per message per learner feed, and once per message
    *per hypothesis per period* by the matcher (``matches_trace`` runs the
    full explanation search for every hypothesis of a result). The cache
    keys on the period's identity (periods are identity-hashed slot
    objects) plus the message occurrence by value; the period object is
    pinned by a strong reference while its entries live, so a recycled
    ``id()`` can never alias a dead period's entries. Bounded LRU: at most
    *capacity* message entries are retained.
    """

    __slots__ = ("capacity", "hits", "misses", "_entries")

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[
            tuple[int, MessageOccurrence, float],
            tuple[Period, tuple[tuple[str, str], ...]],
        ] = OrderedDict()

    def get(
        self,
        period: Period,
        message: MessageOccurrence,
        tolerance: float,
    ) -> tuple[tuple[str, str], ...]:
        key = (id(period), message, tolerance)
        entry = self._entries.get(key)
        if entry is not None and entry[0] is period:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry[1]
        self.misses += 1
        pairs = _compute_candidate_pairs(period, message, tolerance)
        self._entries[key] = (period, pairs)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return pairs

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def cache_info(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
            "capacity": self.capacity,
        }


#: Process-wide memo shared by the learners and the matcher.
_CACHE = CandidateCache()


def candidate_pairs(
    period: Period,
    message: MessageOccurrence,
    tolerance: float = 0.0,
) -> tuple[tuple[str, str], ...]:
    """All temporally possible ``(sender, receiver)`` pairs for *message*.

    *tolerance* loosens the timing comparisons by a small epsilon, useful
    when timestamps were quantized by the logging device. Pairs are
    returned in deterministic (sender, receiver) name order. Results are
    memoized per ``(period, message, tolerance)`` in a bounded LRU (see
    :class:`CandidateCache`).
    """
    return _CACHE.get(period, message, tolerance)


def candidate_cache_info() -> dict[str, int]:
    """Hit/miss/size counters of the shared candidate memo."""
    return _CACHE.cache_info()


def clear_candidate_cache() -> None:
    """Drop the shared candidate memo (tests, long-lived processes)."""
    _CACHE.clear()


def _compute_candidate_pairs(
    period: Period,
    message: MessageOccurrence,
    tolerance: float = 0.0,
) -> tuple[tuple[str, str], ...]:
    senders = possible_senders(period.executions, message, tolerance)
    receivers = possible_receivers(period.executions, message, tolerance)
    pairs = [
        (s, r)
        for s in senders
        for r in receivers
        if s != r
    ]
    pairs.sort()
    return tuple(pairs)


def possible_senders(
    executions: Sequence[TaskExecution],
    message: MessageOccurrence,
    tolerance: float = 0.0,
) -> tuple[str, ...]:
    """Tasks that finished no later than the message's rising edge."""
    names = [
        e.task for e in executions if e.end <= message.rise + tolerance
    ]
    names.sort()
    return tuple(names)


def possible_receivers(
    executions: Sequence[TaskExecution],
    message: MessageOccurrence,
    tolerance: float = 0.0,
) -> tuple[str, ...]:
    """Tasks that started no earlier than the message's falling edge."""
    names = [
        e.task for e in executions if e.start >= message.fall - tolerance
    ]
    names.sort()
    return tuple(names)


def period_candidates(
    period: Period, tolerance: float = 0.0
) -> list[tuple[MessageOccurrence, tuple[tuple[str, str], ...]]]:
    """``(message, A_m)`` for every message of *period*, in rise order."""
    return [
        (message, candidate_pairs(period, message, tolerance))
        for message in period.messages
    ]
