"""Candidate sender-receiver computation ``A_m`` (paper Section 3.1).

The bus logger gives no information about a message's sender or receiver;
the learner enumerates every pair that is *temporally possible*:

* the sender must be a task that executed in the period and whose end event
  is no later than the message's rising edge — the MOC sends messages only
  when the sender task finishes (Section 2.1);
* the receiver must be a task that executed in the period and whose start
  event is no earlier than the message's falling edge — the firing rule is
  the arrival of all required inputs, so a task cannot consume a message
  after it has already started;
* sender and receiver are distinct.

These are exactly the constraints that produce the paper's worked example:
in period 1 of Figure 2, ``A_m1 = {(t1, t2), (t1, t4)}`` and
``A_m2 = {(t1, t4), (t2, t4)}``.
"""

from __future__ import annotations

from typing import Sequence

from repro.trace.events import MessageOccurrence, TaskExecution
from repro.trace.period import Period


def candidate_pairs(
    period: Period,
    message: MessageOccurrence,
    tolerance: float = 0.0,
) -> tuple[tuple[str, str], ...]:
    """All temporally possible ``(sender, receiver)`` pairs for *message*.

    *tolerance* loosens the timing comparisons by a small epsilon, useful
    when timestamps were quantized by the logging device. Pairs are
    returned in deterministic (sender, receiver) name order.
    """
    senders = possible_senders(period.executions, message, tolerance)
    receivers = possible_receivers(period.executions, message, tolerance)
    pairs = [
        (s, r)
        for s in senders
        for r in receivers
        if s != r
    ]
    pairs.sort()
    return tuple(pairs)


def possible_senders(
    executions: Sequence[TaskExecution],
    message: MessageOccurrence,
    tolerance: float = 0.0,
) -> tuple[str, ...]:
    """Tasks that finished no later than the message's rising edge."""
    names = [
        e.task for e in executions if e.end <= message.rise + tolerance
    ]
    names.sort()
    return tuple(names)


def possible_receivers(
    executions: Sequence[TaskExecution],
    message: MessageOccurrence,
    tolerance: float = 0.0,
) -> tuple[str, ...]:
    """Tasks that started no earlier than the message's falling edge."""
    names = [
        e.task for e in executions if e.start >= message.fall - tolerance
    ]
    names.sort()
    return tuple(names)


def period_candidates(
    period: Period, tolerance: float = 0.0
) -> list[tuple[MessageOccurrence, tuple[tuple[str, str], ...]]]:
    """``(message, A_m)`` for every message of *period*, in rise order."""
    return [
        (message, candidate_pairs(period, message, tolerance))
        for message in period.messages
    ]
