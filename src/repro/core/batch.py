"""Batched numpy array-of-masks backend of the mask kernel.

The loop kernel (:mod:`repro.core.interning` driven by
:mod:`repro.core.heuristic` / :mod:`repro.core.exact`) processes one
hypothesis × candidate at a time; this module re-expresses the kernel's
four per-message operations as bulk bitwise ops over ``uint64`` mask
columns (multi-word for > 64 pairs):

* **candidate-set computation** — the feasibility test ``period_mask &
  bit == 0`` for every (hypothesis, candidate) cell at once;
* **Definition 8 weight refresh** — extension deltas and from-scratch
  set weights from the term tables, vectorized over whole pools
  (:func:`batch_set_weights`, :func:`batch_extension_tables`);
* **LUB merges** — union deltas as bulk weight differences
  (:func:`batch_union_deltas`) plus an O(popcount) inline delta in the
  bounded cascade;
* **superset elimination** — the exact algorithm's redundancy test as
  block subset comparisons (:func:`batch_remove_redundant_masks`).

Everything stays behind the existing mask boundary: the learners here
subclass :class:`~repro.core.heuristic.BoundedLearner` /
:class:`~repro.core.exact.ExactLearner` and only replace hot-loop
internals, so checkpoints, sharding, ``result()`` and repro-lint's RL003
containment are untouched. Model identity with the loop kernel (and the
string reference oracle) is bit-for-bit and asserted by the property
suite ``tests/property/test_batch_kernel_props.py``.

Kernel selection goes through the small registry at the top
(:data:`KERNEL_CHOICES`, :func:`resolve_kernel`): ``"auto"`` picks the
batch backend exactly when numpy is importable, so environments without
numpy silently keep the loop kernel.

Implementation notes for the bounded cascade
--------------------------------------------

The bounded learner's per-message step keeps three exact equivalences
that make the fast path bit-identical to the loop kernel:

* **Compact pair interning.** Real traces touch a small fraction of the
  ``t^2`` pair bits (the gm workload: ~130 of 324). Candidate bits are
  re-interned into a dense compact index space, first-seen append-only,
  so in-flight masks fit one or two machine words. Iteration stays in
  *canonical* bit order (ascending pair index), so exploration order —
  and therefore dedup and merge order — is unchanged.
* **Combined single-int keys.** An in-flight hypothesis is one int:
  ``(mask << S) | period_mask`` over compact bits, so extension and the
  LUB merge are each a single ``|``.
* **Eager sorted-list pool.** The loop kernel's heap never holds a stale
  entry: inserts push exactly when a key is new and every removal pops
  the matching entry, so the heap multiset always equals the pool key
  set. An eagerly maintained sorted list (lightest at the end, priority
  ``-(weight << SEQ_BITS) - seq``) is therefore observably identical,
  and makes pop O(1). Weights are pure functions of the mask under fixed
  statistics, which licenses the overwrite-dedup ``pool[key] = weight``.
"""

from __future__ import annotations

import time
from bisect import insort
from typing import Iterable, Sequence

from repro.core import lattice
from repro.core.candidates import candidate_pairs
from repro.core.exact import ExactLearner, _remove_redundant_masks
from repro.core.heuristic import BoundedLearner
from repro.core.instrumentation import hot_loop
from repro.core.interning import WeightKernel
from repro.core.result import LearningResult
from repro.core.weights import DistanceFunction
from repro.errors import EmptyHypothesisSpaceError, LearningError
from repro.trace.period import Period
from repro.trace.trace import Trace

try:  # pragma: no cover - numpy ships with the toolchain
    import numpy as np
except ImportError:  # pragma: no cover
    np = None


# ---------------------------------------------------------------------------
# Kernel registry

#: Accepted kernel names: ``auto`` resolves per numpy availability.
KERNEL_CHOICES = ("auto", "loop", "batch")

#: Bits reserved for the insertion sequence in packed pool priorities.
SEQ_BITS = 32


def batch_available() -> bool:
    """True when the batch backend can run (numpy importable)."""
    return np is not None


def resolve_kernel(kernel: str = "auto") -> str:
    """Resolve a kernel registry name to ``"loop"`` or ``"batch"``.

    ``"auto"`` selects the batch backend exactly when numpy is
    importable. Asking for ``"batch"`` without numpy is an error rather
    than a silent downgrade.
    """
    if kernel not in KERNEL_CHOICES:
        choices = ", ".join(KERNEL_CHOICES)
        raise ValueError(f"unknown kernel {kernel!r}: choose from {choices}")
    if kernel == "auto":
        return "batch" if np is not None else "loop"
    if kernel == "batch" and np is None:
        raise LearningError(
            "the batch kernel requires numpy, which is not importable; "
            "select kernel='loop'"
        )
    return kernel


# ---------------------------------------------------------------------------
# Mask-column packing

@hot_loop
def pack_masks(masks: Sequence[int], words: int):
    """Pack int bitmasks into a ``(len(masks), words)`` uint64 column array.

    Little-endian word order: bit ``i`` of a mask lands in word
    ``i >> 6``, bit position ``i & 63``.
    """
    nbytes = words * 8
    buffer = b"".join(mask.to_bytes(nbytes, "little") for mask in masks)
    return np.frombuffer(buffer, dtype="<u8").reshape(len(masks), words)


@hot_loop
def unpack_masks(packed) -> list[int]:
    """Inverse of :func:`pack_masks`: uint64 columns back to Python ints."""
    out: list[int] = []
    for row in packed.tolist():
        mask = 0
        for position, word in enumerate(row):
            mask |= word << (64 * position)
        out.append(mask)
    return out


#: One-entry cache for :func:`_term_arrays`. The kernel object is held
#: by strong reference, so its ``id`` cannot be recycled while cached;
#: a hit additionally requires the certainty flags to compare equal to
#: the cached snapshot. Per kernel instance the term tables are a pure
#: function of those flags (the distance constants are fixed at
#: construction), so flag equality implies table equality — a ``flip``
#: or ``unflip`` between calls invalidates the cache exactly.
_TERM_CACHE: dict = {}


def _term_arrays(kernel: WeightKernel):
    """The kernel's Definition 8 term tables as int64 numpy arrays.

    Converting the term lists costs more than the vectorized math on a
    typical per-message matrix, so the arrays (plus the pair-index /
    shift / word vectors every bulk op re-derives from them) are cached
    and rebuilt only when the kernel or its certainty flags change.
    """
    if (
        _TERM_CACHE.get("kernel") is kernel
        and _TERM_CACHE.get("certain") == kernel._certain
    ):
        return _TERM_CACHE["arrays"]
    term_f = np.asarray(kernel._term_f)
    term_b = np.asarray(kernel._term_b)
    term_fb = np.asarray(kernel._term_fb)
    if term_f.dtype.kind != "i":
        raise LearningError(
            "the batch kernel requires an integer-valued distance function"
        )
    mirror = np.asarray(kernel.table.mirror_index, dtype=np.int64)
    index = np.arange(mirror.size, dtype=np.int64)
    arrays = (
        term_f.astype(np.int64),
        term_b.astype(np.int64),
        term_fb.astype(np.int64),
        mirror,
        index >> 6,
        (index & 63).astype(np.uint64),
    )
    _TERM_CACHE.clear()
    _TERM_CACHE.update(
        kernel=kernel, certain=list(kernel._certain), arrays=arrays
    )
    return arrays


# ---------------------------------------------------------------------------
# Bulk kernel operations (canonical pair-index space)

def batch_set_weights(kernel: WeightKernel, masks: Sequence[int]) -> list[int]:
    """Definition 8 weights of many masks at once.

    Bit-for-bit equal to ``[kernel.set_weight(m) for m in masks]``: the
    per-term contribution is reproduced as a branch-free arithmetic
    select over the whole ``(n, t^2)`` bit matrix — terms the mask does
    not touch contribute zero, so summing over all ordered pairs equals
    summing over the touched set.
    """
    term_f, term_b, term_fb, mirror, word, shift = _term_arrays(kernel)
    pair_count = mirror.size
    words = max(1, (pair_count + 63) >> 6)
    packed = pack_masks(masks, words)
    forward = ((packed[:, word] >> shift) & 1).astype(np.int64)
    backward = forward[:, mirror]
    contribution = forward * (
        backward * term_fb + (1 - backward) * term_f
    ) + (1 - forward) * backward * term_b
    return contribution.sum(axis=1).tolist()


def batch_union_deltas(
    kernel: WeightKernel, bases: Sequence[int], others: Sequence[int]
) -> list[int]:
    """LUB-merge weight deltas for many ``(base, other)`` pairs at once.

    ``union_delta(base, other)`` is by definition ``set_weight(base |
    other) - set_weight(base)`` under fixed term tables, so the bulk form
    is two vectorized weight evaluations and a subtraction.
    """
    unions = [base | other for base, other in zip(bases, others)]
    union_weights = batch_set_weights(kernel, unions)
    base_weights = batch_set_weights(kernel, bases)
    return [u - b for u, b in zip(union_weights, base_weights)]


def batch_extension_tables(
    kernel: WeightKernel,
    entries: Sequence[tuple[int, int, int]],
    bits: Sequence[int],
):
    """Feasibility and child weights for every (hypothesis, candidate) cell.

    *entries* are ``(mask, period_mask, weight)`` triples; *bits* the
    message's candidate pair bits. Returns ``(feasible, child_weights)``
    as ``(n, k)`` row lists matching the loop kernel's per-cell
    ``period_mask & bit == 0`` test and
    :meth:`~repro.core.interning.WeightKernel.extension_delta`.
    """
    term_f, term_b, term_fb, mirror_all, _word, _shift = _term_arrays(kernel)
    pair_count = mirror_all.size
    words = max(1, (pair_count + 63) >> 6)
    masks = pack_masks([entry[0] for entry in entries], words)
    period_masks = pack_masks([entry[1] for entry in entries], words)
    weights = np.asarray([entry[2] for entry in entries], dtype=np.int64)
    index = np.fromiter(
        (bit.bit_length() - 1 for bit in bits), dtype=np.int64, count=len(bits)
    )
    mirror = mirror_all[index]
    shift = (index & 63).astype(np.uint64)
    mirror_shift = (mirror & 63).astype(np.uint64)
    present = (masks[:, index >> 6] >> shift) & 1
    mirrored = (masks[:, mirror >> 6] >> mirror_shift) & 1
    feasible = ((period_masks[:, index >> 6] >> shift) & 1) == 0
    delta_new = term_f[index] + term_b[mirror]
    delta_mutual = (
        term_fb[index] - term_b[index] + term_fb[mirror] - term_f[mirror]
    )
    delta = np.where(present == 1, 0, np.where(mirrored == 1, delta_mutual, delta_new))
    child_weights = weights[:, None] + delta
    return feasible.tolist(), child_weights.tolist()


@hot_loop
def batch_remove_redundant_masks(masks: Iterable[int]) -> list[int]:
    """Keep only minimal pair masks under inclusion — block subset tests.

    Same contract and output order as
    :func:`repro.core.exact._remove_redundant_masks`; the quadratic
    inner ``kept ⊆ candidate`` scan runs as one vectorized comparison
    per candidate. Testing against *all* earlier masks (not only kept
    minimal ones) is equivalent by transitivity of inclusion.
    """
    unique = set(masks)
    by_size = sorted(unique, key=lambda mask: mask.bit_count())
    if np is None or len(by_size) <= 2:
        return _remove_redundant_masks(by_size)
    width = max(mask.bit_length() for mask in by_size)
    words = max(1, (width + 63) >> 6)
    packed = pack_masks(by_size, words)
    minimal: list[int] = []
    for position, candidate in enumerate(by_size):
        if position:
            earlier = packed[:position]
            row = packed[position]
            if bool(((earlier & row) == earlier).all(axis=1).any()):
                continue
        minimal.append(candidate)
    return minimal


# ---------------------------------------------------------------------------
# Batch bounded learner

class BatchBoundedLearner(BoundedLearner):
    """:class:`~repro.core.heuristic.BoundedLearner` on the batch backend.

    Same parameters, same results — bit for bit — different hot loop:
    per message, child generation (feasibility + extension deltas for
    every pool × candidate cell) is one set of numpy column ops, and the
    merge cascade runs over combined single-int compact keys with an
    eager sorted-list pool and an O(popcount) inline union delta. See
    the module docstring for why each transformation is identity-safe.
    """

    def __init__(
        self,
        tasks: Iterable[str],
        bound: int,
        tolerance: float = 0.0,
        distance: DistanceFunction = lattice.distance,
        incremental_weights: bool = True,
    ):
        if np is None:
            raise LearningError(
                "the batch kernel requires numpy, which is not importable; "
                "use BoundedLearner instead"
            )
        super().__init__(tasks, bound, tolerance, distance, incremental_weights)
        #: canonical bit value -> compact index (first-seen, append-only)
        self._compact_of: dict[int, int] = {}
        #: compact index -> canonical bit value / canonical pair index
        self._canonical_bit: list[int] = []
        self._canonical_index: list[int] = []
        self._words = 1        # uint64 words per field
        self._field = 64       # compact field width == mask shift
        self._generation_cache: dict[tuple[int, ...], tuple] = {}
        self._term_epoch: object = None

    # -- compact pair interning ----------------------------------------

    @hot_loop
    def _intern_bits(self, bits: Sequence[int]) -> bool:
        """Extend the compact table; True when the word layout grew."""
        compact_of = self._compact_of
        for bit in bits:
            if bit not in compact_of:
                compact_of[bit] = len(self._canonical_bit)
                self._canonical_bit.append(bit)
                self._canonical_index.append(bit.bit_length() - 1)
        need = max(1, (len(self._canonical_bit) + 63) >> 6)
        if need != self._words:
            self._words = need
            self._field = 64 * need
            return True
        return False

    @hot_loop
    def _intern_mask_bits(self, mask: int) -> None:
        """Intern every set bit of a canonical mask (checkpoint restores
        and shard merges carry masks whose bits never went through a
        candidate set)."""
        compact_of = self._compact_of
        while mask:
            low = mask & -mask
            mask ^= low
            if low not in compact_of:
                compact_of[low] = len(self._canonical_bit)
                self._canonical_bit.append(low)
                self._canonical_index.append(low.bit_length() - 1)

    @hot_loop
    def _encode_mask(self, mask: int) -> int:
        """Canonical mask -> compact mask (bits must be interned)."""
        compact_of = self._compact_of
        out = 0
        while mask:
            low = mask & -mask
            mask ^= low
            out |= 1 << compact_of[low]
        return out

    @hot_loop
    def _decode_compact(self, compact: int) -> int:
        """Compact mask -> canonical mask."""
        canonical = self._canonical_bit
        out = 0
        while compact:
            low = compact & -compact
            compact ^= low
            out |= canonical[low.bit_length() - 1]
        return out

    # -- term tables in compact space ----------------------------------

    @hot_loop
    def _refresh_terms(self) -> None:
        """Rebuild compact-indexed branch tables for the inline merge delta.

        Terms change only on a kernel rebuild (new object) or a flip
        (always paired with a statistics version bump, which is strictly
        monotone — so ``(id, version)`` cannot collide); the epoch also
        carries the compact layout, because interning a pair whose
        mirror arrives later changes that pair's mirror slot.
        """
        kernel = self._kernel
        epoch = (
            id(kernel),
            self.stats.version,
            self._field,
            len(self._canonical_bit),
        )
        if self._term_epoch == epoch:
            return
        self._term_epoch = epoch
        term_f = kernel._term_f
        term_b = kernel._term_b
        term_fb = kernel._term_fb
        mirror = self.table.mirror_index
        compact_of = self._compact_of
        field = self._field
        # Inline merge-delta branches for one newly-acquired compact bit i
        # with mirror mi: both new -> fb[i]; mirror already in the base ->
        # both ordered terms step to mutual; mirror absent -> two singles.
        branch_both = []
        branch_mutual = []
        branch_single = []
        mirror_compact = []  # compact mirror index; `field` == never set
        for canonical_index in self._canonical_index:
            mirror_index = mirror[canonical_index]
            branch_both.append(term_fb[canonical_index])
            branch_mutual.append(
                term_fb[canonical_index]
                - term_b[canonical_index]
                + term_fb[mirror_index]
                - term_f[mirror_index]
            )
            branch_single.append(term_f[canonical_index] + term_b[mirror_index])
            compact_mirror = compact_of.get(1 << mirror_index)
            mirror_compact.append(
                field if compact_mirror is None else compact_mirror
            )
        self._branch_both = branch_both
        self._branch_mutual = branch_mutual
        self._branch_single = branch_single
        self._mirror_compact = mirror_compact
        term_f_np = np.asarray(term_f)
        if term_f_np.dtype.kind != "i":
            raise LearningError(
                "the batch kernel requires an integer-valued distance function"
            )
        self._term_f_np = term_f_np.astype(np.int64)
        self._term_b_np = np.asarray(term_b, dtype=np.int64)
        self._term_fb_np = np.asarray(term_fb, dtype=np.int64)
        self._generation_cache.clear()

    def _generation_arrays(self, bits: tuple[int, ...]) -> tuple:
        """Cached per-candidate index/delta arrays for one bits tuple."""
        entry = self._generation_cache.get(bits)
        if entry is None:
            words = self._words
            field = self._field
            compacts = [self._compact_of[bit] for bit in bits]
            canonical = np.asarray(
                [self._canonical_index[c] for c in compacts], dtype=np.int64
            )
            mirror = np.asarray(self.table.mirror_index, dtype=np.int64)[
                canonical
            ]
            compact = np.asarray(compacts, dtype=np.int64)
            word = words + (compact >> 6)
            shift = (compact & 63).astype(np.uint64)
            period_word = compact >> 6
            mirror_c = np.asarray(
                [self._mirror_compact[c] for c in compacts], dtype=np.int64
            )
            seen = (mirror_c < field).astype(np.uint64)
            mirror_safe = np.where(mirror_c < field, mirror_c, 0)
            mirror_word = words + (mirror_safe >> 6)
            mirror_shift = (mirror_safe & 63).astype(np.uint64)
            delta_new = self._term_f_np[canonical] + self._term_b_np[mirror]
            delta_mutual = (
                self._term_fb_np[canonical]
                - self._term_b_np[canonical]
                + self._term_fb_np[mirror]
                - self._term_f_np[mirror]
            )
            extension = [(1 << (field + c)) | (1 << c) for c in compacts]
            entry = (
                word,
                shift,
                period_word,
                mirror_word,
                mirror_shift,
                seen,
                delta_new,
                delta_mutual,
                extension,
            )
            self._generation_cache[bits] = entry
        return entry

    # -- the cascaded message step over combined compact keys ----------

    @hot_loop
    def _process_combined(
        self,
        centries: list[tuple[int, int]],
        bits: tuple[int, ...],
        history: Sequence[tuple[int, ...]],
    ) -> list[tuple[int, int]]:
        """One generalization step on combined compact keys.

        Child generation is vectorized over the whole pool × candidate
        matrix; the bound cascade consumes the rows in canonical order
        through an eager sorted-list pool, so insertion, dedup and merge
        order all match the loop kernel exactly.
        """
        counters = self._counters
        count = len(centries)
        words = self._words
        field = self._field
        nbytes = 16 * words
        keys = [entry[0] for entry in centries]
        weights = [entry[1] for entry in centries]
        (
            word,
            shift,
            period_word,
            mirror_word,
            mirror_shift,
            seen,
            delta_new,
            delta_mutual,
            extension,
        ) = self._generation_arrays(bits)
        columns = np.frombuffer(
            b"".join(key.to_bytes(nbytes, "little") for key in keys),
            dtype="<u8",
        ).reshape(count, 2 * words)
        present = (columns[:, word] >> shift) & 1
        mirrored = (columns[:, mirror_word] >> mirror_shift) & seen & 1
        feasible = ((columns[:, period_word] >> shift) & 1) == 0
        delta = np.where(
            present == 1, 0, np.where(mirrored == 1, delta_mutual, delta_new)
        )
        child_weights = (
            np.asarray(weights, dtype=np.int64)[:, None] + delta
        ).tolist()
        feasible_rows = feasible.tolist()
        counters.batch_messages += 1
        counters.batch_children += int(feasible.sum())

        bound = self.bound
        kernel = self._kernel
        pool: dict[int, int] = {}
        order: list[tuple[int, int]] = []  # ascending priority; lightest last
        pool_pop = pool.pop
        order_pop = order.pop
        branch_both = self._branch_both
        branch_mutual = self._branch_mutual
        branch_single = self._branch_single
        mirror_compact = self._mirror_compact
        merges = 0
        sequence = 0
        size = 0
        for row in range(count):
            key_base = keys[row]
            row_feasible = feasible_rows[row]
            row_weights = child_weights[row]
            any_feasible = False
            for column, ok in enumerate(row_feasible):
                if not ok:
                    continue
                any_feasible = True
                key = key_base | extension[column]
                weight = row_weights[column]
                pool[key] = weight
                if len(pool) == size:
                    continue
                size += 1
                sequence += 1
                insort(order, (-(weight << SEQ_BITS) - sequence, key))
                while size > bound:
                    _priority, first = order_pop()
                    first_weight = pool_pop(first)
                    _priority, second = order_pop()
                    pool_pop(second)
                    size -= 2
                    merged = first | second
                    merges += 1
                    if merged == first:
                        merged_weight = first_weight
                    else:
                        acquired = (second & ~first) >> field
                        if acquired:
                            base_mask = first >> field
                            delta_sum = 0
                            remaining = acquired
                            while remaining:
                                low = remaining & -remaining
                                remaining ^= low
                                i = low.bit_length() - 1
                                mi = mirror_compact[i]
                                if (acquired >> mi) & 1:
                                    delta_sum += branch_both[i]
                                elif (base_mask >> mi) & 1:
                                    delta_sum += branch_mutual[i]
                                else:
                                    delta_sum += branch_single[i]
                            merged_weight = first_weight + delta_sum
                        else:
                            merged_weight = first_weight
                    pool[merged] = merged_weight
                    if len(pool) != size:
                        size += 1
                        sequence += 1
                        insort(
                            order,
                            (-(merged_weight << SEQ_BITS) - sequence, merged),
                        )
            if not any_feasible:
                # Merged-lineage repair runs in canonical space: the
                # backtracking sorts candidate *bit values*, and compact
                # values would explore a different order.
                canonical_mask = self._decode_compact(key_base >> field)
                repaired = self._reassign_period(canonical_mask, history)
                counters.reassignments += 1
                if repaired is not None:
                    repaired_mask, repaired_period = repaired
                    counters.weight_scratch_calls += 1
                    repaired_weight = kernel.set_weight(repaired_mask)
                    key = (
                        self._encode_mask(repaired_mask) << field
                    ) | self._encode_mask(repaired_period)
                    pool[key] = repaired_weight
                    if len(pool) != size:
                        size += 1
                        sequence += 1
                        insort(
                            order,
                            (-(repaired_weight << SEQ_BITS) - sequence, key),
                        )
                        while size > bound:
                            _priority, first = order_pop()
                            first_weight = pool_pop(first)
                            _priority, second = order_pop()
                            pool_pop(second)
                            size -= 2
                            merged = first | second
                            merges += 1
                            if merged == first:
                                merged_weight = first_weight
                            else:
                                base_mask = self._decode_compact(first >> field)
                                other_mask = self._decode_compact(
                                    second >> field
                                )
                                merged_weight = first_weight + (
                                    kernel.union_delta(base_mask, other_mask)
                                )
                            pool[merged] = merged_weight
                            if len(pool) != size:
                                size += 1
                                sequence += 1
                                insort(
                                    order,
                                    (
                                        -(merged_weight << SEQ_BITS)
                                        - sequence,
                                        merged,
                                    ),
                                )
        self._merges += merges
        if not pool:
            raise EmptyHypothesisSpaceError(self._periods)
        return list(pool.items())

    # -- absorb override: combined keys across the message loop --------

    @hot_loop
    def _absorb(
        self, period: Period, dirty: frozenset[tuple[str, str]], mark: float
    ):
        counters = self._counters
        table = self.table
        dirty_indices = table.indices_of(dirty)
        version = self.stats.version
        if self._kernel is None or self._kernel_version != version - 1:
            self._kernel = WeightKernel(table, self.stats, self.distance)
        elif dirty_indices:
            self._kernel.flip(dirty_indices)
        self._kernel_version = version
        try:
            entries = self._refresh_weights(dirty_indices)
            now = time.perf_counter()
            counters.refresh_seconds += now - mark
            mark = now
            history: list[tuple[int, ...]] = []
            centries: list[tuple[int, int]] | None = None
            for message in period.messages:
                pairs = candidate_pairs(period, message, self.tolerance)
                if not pairs:
                    raise EmptyHypothesisSpaceError(self._periods)
                counters.observe_candidates(len(pairs))
                bits = table.bits_of(pairs)
                field_before = self._field
                grew = self._intern_bits(bits)
                if centries is None:
                    # First message: the carried masks may hold bits that
                    # never crossed a candidate set (checkpoint restore),
                    # so intern them before fixing this message's layout.
                    for mask, _period_mask, _weight in entries:
                        self._intern_mask_bits(mask)
                    need = max(1, (len(self._canonical_bit) + 63) >> 6)
                    if need != self._words:
                        self._words = need
                        self._field = 64 * need
                        grew = True
                    field = self._field
                    centries = [
                        (
                            (self._encode_mask(mask) << field)
                            | self._encode_mask(period_mask),
                            weight,
                        )
                        for mask, period_mask, weight in entries
                    ]
                elif grew:
                    counters.batch_relayouts += 1
                    field = self._field
                    low = (1 << field_before) - 1
                    centries = [
                        (
                            ((key >> field_before) << field) | (key & low),
                            weight,
                        )
                        for key, weight in centries
                    ]
                self._refresh_terms()
                history.append(bits)
                centries = self._process_combined(centries, bits, history)
                self._messages += 1
                self._peak = max(self._peak, len(centries))
            counters.process_seconds += time.perf_counter() - mark
            if centries is None:
                # Message-free period: nothing was combined, the refreshed
                # entries carry through unchanged (same as the loop path).
                return entries
            field = self._field
            low = (1 << field) - 1
            return [
                (
                    self._decode_compact(key >> field),
                    self._decode_compact(key & low),
                    weight,
                )
                for key, weight in centries
            ]
        except Exception:
            self._kernel.unflip(dirty_indices)
            raise

    def result(self) -> LearningResult:
        result = super().result()
        result.kernel = "batch"
        return result


# ---------------------------------------------------------------------------
# Batch exact learner

class BatchExactLearner(ExactLearner):
    """:class:`~repro.core.exact.ExactLearner` on the batch backend.

    Feasibility of every (hypothesis, candidate) cell is one bulk
    bitwise test over packed period-mask columns, and the end-of-period
    superset elimination runs as block subset comparisons. Extension
    itself stays a dict build (the dedup order *is* the algorithm).
    """

    def __init__(
        self,
        tasks: Iterable[str],
        tolerance: float = 0.0,
        max_hypotheses: int = 2_000_000,
    ):
        if np is None:
            raise LearningError(
                "the batch kernel requires numpy, which is not importable; "
                "use ExactLearner instead"
            )
        super().__init__(tasks, tolerance, max_hypotheses)

    @hot_loop
    def _absorb(
        self, period: Period, dirty: frozenset[tuple[str, str]], mark: float
    ) -> Sequence[tuple[int, int]]:
        counters = self._counters
        table = self.table
        pair_count = table.task_count * table.task_count
        words = max(1, (pair_count + 63) >> 6)
        current: Sequence[tuple[int, int]] = [
            (mask, 0) for mask in self._masks
        ]
        for message in period.messages:
            pairs = candidate_pairs(period, message, self.tolerance)
            counters.observe_candidates(len(pairs))
            bits = table.bits_of(pairs)
            index = np.fromiter(
                (bit.bit_length() - 1 for bit in bits),
                dtype=np.int64,
                count=len(bits),
            )
            shift = (index & 63).astype(np.uint64)
            period_masks = pack_masks(
                [period_mask for _mask, period_mask in current], words
            )
            feasible = (
                ((period_masks[:, index >> 6] >> shift) & 1) == 0
            ).tolist()
            counters.batch_messages += 1
            next_generation: dict[tuple[int, int], None] = {}
            for (mask, period_mask), row in zip(current, feasible):
                for bit, ok in zip(bits, row):
                    if ok:
                        next_generation[mask | bit, period_mask | bit] = None
            counters.batch_children += len(next_generation)
            if not next_generation:
                raise EmptyHypothesisSpaceError(self._periods, len(pairs))
            if len(next_generation) > self.max_hypotheses:
                raise LearningError(
                    f"exact learner exceeded {self.max_hypotheses} hypotheses "
                    f"in period {self._periods}; use the bounded heuristic"
                )
            current = list(next_generation)
            self._messages += 1
            self._peak = max(self._peak, len(current))
        counters.process_seconds += time.perf_counter() - mark
        return current

    def _finish_period(
        self,
        pending: Sequence[tuple[int, int]],
        dirty: frozenset[tuple[str, str]],
    ) -> None:
        self._masks = batch_remove_redundant_masks(
            mask for mask, _period_mask in pending
        )
        self._decoded = None

    def result(self) -> LearningResult:
        result = super().result()
        result.kernel = "batch"
        return result


# ---------------------------------------------------------------------------
# Convenience drivers (mirror heuristic.learn_bounded / exact.learn_exact)

def learn_bounded_batch(
    trace: Trace,
    bound: int,
    tolerance: float = 0.0,
    distance: DistanceFunction = lattice.distance,
) -> LearningResult:
    """Run the bounded heuristic on the batch kernel over a trace."""
    learner = BatchBoundedLearner(trace.tasks, bound, tolerance, distance)
    learner.feed_trace(trace)
    return learner.result()


def learn_exact_batch(
    trace: Trace,
    tolerance: float = 0.0,
    max_hypotheses: int = 2_000_000,
) -> LearningResult:
    """Run the exact algorithm on the batch kernel over a trace."""
    learner = BatchExactLearner(trace.tasks, tolerance, max_hypotheses)
    learner.feed_trace(trace)
    return learner.result()


__all__ = [
    "KERNEL_CHOICES",
    "SEQ_BITS",
    "batch_available",
    "resolve_kernel",
    "pack_masks",
    "unpack_masks",
    "batch_set_weights",
    "batch_union_deltas",
    "batch_extension_tables",
    "batch_remove_redundant_masks",
    "BatchBoundedLearner",
    "BatchExactLearner",
    "learn_bounded_batch",
    "learn_exact_batch",
]
