"""The string-frozenset reference kernel (differential baseline).

This module preserves, verbatim in behavior, the pair-set representation
the learners used before the interned bitmask kernel
(:mod:`repro.core.interning`) replaced it: hypotheses as
``frozenset[tuple[str, str]]``, weights evaluated through
:func:`pair_value`, and the bounded heuristic's working list operating
on those frozensets. It exists for three reasons:

* the **property tests** pin the bitmask kernel against it — on
  randomized traces both kernels must produce identical hypothesis
  pools, weights and final dependency graphs;
* the **throughput benchmarks** measure the kernel speedup against it
  on the same machine (the acceptance bar for the rewrite);
* the weight helpers (:func:`set_weight`, :func:`flip_delta`, ...) are
  the readable, by-the-paper statement of Definition 8 that the kernel's
  term tables are checked against.

Nothing in the production paths imports this module; it is test and
benchmark surface only.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Iterable, Sequence

from repro.core import lattice
from repro.core.base import IncrementalLearner
from repro.core.candidates import candidate_pairs
from repro.core.hypothesis import Hypothesis, Pair
from repro.core.result import LearningResult
from repro.core.stats import CoExecutionStats
from repro.core.weights import DistanceFunction, square_distance
from repro.errors import EmptyHypothesisSpaceError, LearningError
from repro.trace.period import Period
from repro.trace.trace import Trace

_PoolKey = tuple[frozenset, frozenset]


def pair_value(
    pairs: frozenset[Pair], a: str, b: str, stats: CoExecutionStats
) -> lattice.DepValue:
    """Dependency value of ``(a, b)`` for a raw pair set (O(1))."""
    forward = (a, b) in pairs
    backward = (b, a) in pairs
    if not forward and not backward:
        return lattice.PARALLEL
    certain = stats.always_implies(a, b)
    value = lattice.PARALLEL
    if forward:
        value = lattice.DETERMINES if certain else lattice.MAY_DETERMINE
    if backward:
        back = lattice.DEPENDS if certain else lattice.MAY_DEPEND
        value = lattice.lub(value, back)
    return value


def extension_delta(
    pairs: frozenset[Pair],
    pair: Pair,
    stats: CoExecutionStats,
    distance: DistanceFunction = lattice.distance,
) -> int:
    """Weight change from adding *pair* to *pairs*."""
    if pair in pairs:
        return 0
    s, r = pair
    extended = pairs | {pair}
    return (
        distance(pair_value(extended, s, r, stats))
        - distance(pair_value(pairs, s, r, stats))
        + distance(pair_value(extended, r, s, stats))
        - distance(pair_value(pairs, r, s, stats))
    )


def union_weight(
    base_pairs: frozenset[Pair],
    base_weight: int,
    other_pairs: frozenset[Pair],
    stats: CoExecutionStats,
    distance: DistanceFunction = lattice.distance,
) -> int:
    """Weight of ``base ∪ other`` given the weight of ``base``."""
    new_pairs = other_pairs - base_pairs
    if not new_pairs:
        return base_weight
    union = base_pairs | new_pairs
    touched: set[Pair] = set()
    for a, b in new_pairs:
        touched.add((a, b))
        touched.add((b, a))
    weight = base_weight
    for a, b in touched:
        weight += distance(pair_value(union, a, b, stats))
        weight -= distance(pair_value(base_pairs, a, b, stats))
    return weight


def set_weight(
    pairs: frozenset[Pair],
    stats: CoExecutionStats,
    distance: DistanceFunction = lattice.distance,
) -> int:
    """Weight of a pair set from scratch (plain Definition 8)."""
    touched: set[Pair] = set()
    for a, b in pairs:
        touched.add((a, b))
        touched.add((b, a))
    return sum(distance(pair_value(pairs, a, b, stats)) for a, b in touched)


def flip_delta(
    pairs: frozenset[Pair],
    s: str,
    r: str,
    distance: DistanceFunction = lattice.distance,
) -> int:
    """Weight change when ``always_implies(s, r)`` flips certain → uncertain.

    Only the weight term of the ordered pair ``(s, r)`` is affected, and
    only if the pair set touches it. The flipped term's old and new values
    follow directly from which memberships contribute to it — the
    statistics need not be consulted at all (that is the point: by the
    time the delta is applied the old verdict is gone from the stats).
    """
    forward = (s, r) in pairs
    backward = (r, s) in pairs
    if forward and backward:
        return distance(lattice.MAY_MUTUAL) - distance(lattice.MUTUAL)
    if forward:
        return distance(lattice.MAY_DETERMINE) - distance(lattice.DETERMINES)
    if backward:
        return distance(lattice.MAY_DEPEND) - distance(lattice.DEPENDS)
    return 0


class ReferenceBoundedLearner(IncrementalLearner):
    """The pre-kernel bounded heuristic, kept as a differential baseline.

    Same algorithm, parameters and output as
    :class:`~repro.core.heuristic.BoundedLearner`; the working list holds
    :class:`~repro.core.hypothesis.Hypothesis` objects and every hot-loop
    operation goes through string-tuple frozensets.
    """

    def __init__(
        self,
        tasks: Iterable[str],
        bound: int,
        tolerance: float = 0.0,
        distance: DistanceFunction = lattice.distance,
        incremental_weights: bool = True,
    ):
        if bound < 1:
            raise ValueError(f"bound must be >= 1, got {bound}")
        super().__init__(tasks, tolerance)
        self.bound = bound
        self.distance = distance
        self._incremental = incremental_weights
        self._prime_memo = incremental_weights and (
            distance is lattice.distance or distance is square_distance
        )
        self._hypotheses: list[Hypothesis] = [Hypothesis.most_specific()]
        self._weights: dict[frozenset, int] = {frozenset(): 0}
        self._merges = 0
        self._sequence = itertools.count()

    def _save_run_state(self) -> object:
        return (self._messages, self._peak, self._merges)

    def _restore_run_state(self, state: object) -> None:
        self._messages, self._peak, self._merges = state

    def _absorb(
        self, period: Period, dirty: frozenset[tuple[str, str]], mark: float
    ) -> list[tuple[Hypothesis, int]]:
        counters = self._counters
        entries = self._refresh_weights(dirty)
        now = time.perf_counter()
        counters.refresh_seconds += now - mark
        mark = now
        history: list[Sequence[Pair]] = []
        for message in period.messages:
            pairs = candidate_pairs(period, message, self.tolerance)
            if not pairs:
                raise EmptyHypothesisSpaceError(self._periods)
            counters.observe_candidates(len(pairs))
            history.append(pairs)
            entries = self._process_message(entries, pairs, history)
            self._messages += 1
            self._peak = max(self._peak, len(entries))
        counters.process_seconds += time.perf_counter() - mark
        return entries

    def _finish_period(
        self, pending: list[tuple[Hypothesis, int]], dirty: frozenset[tuple[str, str]]
    ) -> None:
        by_pairs: dict[frozenset, Hypothesis] = {}
        weights: dict[frozenset, int] = {}
        for hypothesis, weight in pending:
            by_pairs[hypothesis.pairs] = hypothesis.end_period()
            weights[hypothesis.pairs] = weight
        self._hypotheses = list(by_pairs.values())
        if self._incremental:
            self._weights = weights
        if self._prime_memo:
            version = self.stats.version
            for hypothesis in self._hypotheses:
                hypothesis.prime_weight(version, weights[hypothesis.pairs])

    def _refresh_weights(self, dirty: frozenset[Pair]) -> list[tuple[Hypothesis, int]]:
        counters = self._counters
        entries: list[tuple[Hypothesis, int]] = []
        for hypothesis in self._hypotheses:
            carried = (
                self._weights.get(hypothesis.pairs)
                if self._incremental
                else None
            )
            if carried is None:
                weight = set_weight(hypothesis.pairs, self.stats, self.distance)
                counters.weight_refresh_scratch += 1
                counters.weight_scratch_calls += 1
            else:
                weight = carried
                if dirty:
                    pairs = hypothesis.pairs
                    for s, r in dirty:
                        weight += flip_delta(pairs, s, r, self.distance)
                counters.weight_refresh_incremental += 1
            entries.append((hypothesis, weight))
        return entries

    def _process_message(
        self,
        entries: list[tuple[Hypothesis, int]],
        pairs: Sequence[Pair],
        history: Sequence[Sequence[Pair]],
    ) -> list[tuple[Hypothesis, int]]:
        pool: dict[_PoolKey, tuple[Hypothesis, int]] = {}
        heap: list[tuple[int, int, _PoolKey]] = []

        def insert(hypothesis: Hypothesis, weight: int) -> None:
            key = (hypothesis.pairs, hypothesis.period_pairs)
            if key in pool:
                return
            pool[key] = (hypothesis, weight)
            heapq.heappush(heap, (weight, next(self._sequence), key))
            while len(pool) > self.bound:
                first = self._pop_lightest(pool, heap)
                second = self._pop_lightest(pool, heap)
                merged = first[0].merge(second[0])
                merged_weight = union_weight(
                    first[0].pairs,
                    first[1],
                    second[0].pairs,
                    self.stats,
                    self.distance,
                )
                self._merges += 1
                merged_key = (merged.pairs, merged.period_pairs)
                if merged_key not in pool:
                    pool[merged_key] = (merged, merged_weight)
                    heapq.heappush(
                        heap, (merged_weight, next(self._sequence), merged_key)
                    )

        for hypothesis, weight in entries:
            feasible = [p for p in pairs if hypothesis.can_extend(p)]
            if feasible:
                for pair in feasible:
                    child = hypothesis.extend(pair)
                    child_weight = weight + extension_delta(
                        hypothesis.pairs, pair, self.stats, self.distance
                    )
                    insert(child, child_weight)
            else:
                repaired = self._reassign_period(hypothesis, history)
                self._counters.reassignments += 1
                if repaired is not None:
                    self._counters.weight_scratch_calls += 1
                    insert(
                        repaired,
                        set_weight(repaired.pairs, self.stats, self.distance),
                    )
        if not pool:
            raise EmptyHypothesisSpaceError(self._periods)
        return list(pool.values())

    @staticmethod
    def _reassign_period(
        hypothesis: Hypothesis, history: Sequence[Sequence[Pair]]
    ) -> Hypothesis | None:
        options = sorted(
            (
                sorted(candidates, key=lambda p: p not in hypothesis.pairs),
                index,
            )
            for index, candidates in enumerate(history)
        )
        options.sort(key=lambda item: len(item[0]))
        assignment: list[Pair] = []
        used: set[Pair] = set()

        def backtrack(position: int) -> bool:
            if position == len(options):
                return True
            for pair in options[position][0]:
                if pair in used:
                    continue
                used.add(pair)
                assignment.append(pair)
                if backtrack(position + 1):
                    return True
                used.discard(pair)
                assignment.pop()
            return False

        if not backtrack(0):
            return None
        chosen = frozenset(assignment)
        current = frozenset(history[-1])
        return Hypothesis(hypothesis.pairs | chosen | current, chosen)

    @staticmethod
    def _pop_lightest(
        pool: dict[_PoolKey, tuple[Hypothesis, int]],
        heap: list[tuple[int, int, _PoolKey]],
    ) -> tuple[Hypothesis, int]:
        while True:
            _weight, _seq, key = heapq.heappop(heap)
            entry = pool.pop(key, None)
            if entry is not None:
                return entry

    def result(self) -> LearningResult:
        ordered = sorted(
            self._hypotheses,
            key=lambda h: (h.weight(self.stats), sorted(h.pairs)),
        )
        return LearningResult(
            functions=[h.to_function(self.stats) for h in ordered],
            hypotheses=ordered,
            stats=self.stats,
            algorithm="heuristic",
            bound=self.bound,
            periods=self._periods,
            messages=self._messages,
            peak_hypotheses=self._peak,
            elapsed_seconds=self._elapsed,
            merge_count=self._merges,
            hot_loop=self._counters.copy(),
        )


def _remove_redundant(pair_sets: Iterable[frozenset[Pair]]) -> list[frozenset[Pair]]:
    """Keep only minimal pair sets under inclusion (string form)."""
    unique = set(pair_sets)
    by_size = sorted(unique, key=len)
    minimal: list[frozenset[Pair]] = []
    for candidate in by_size:
        if not any(kept < candidate for kept in minimal):
            minimal.append(candidate)
    return minimal


class ReferenceExactLearner(IncrementalLearner):
    """The pre-kernel exact learner, kept as a differential baseline."""

    def __init__(
        self,
        tasks: Iterable[str],
        tolerance: float = 0.0,
        max_hypotheses: int = 2_000_000,
    ):
        super().__init__(tasks, tolerance)
        self.max_hypotheses = max_hypotheses
        self._hypotheses: list[Hypothesis] = [Hypothesis.most_specific()]

    def _save_run_state(self) -> object:
        return (self._messages, self._peak)

    def _restore_run_state(self, state: object) -> None:
        self._messages, self._peak = state

    def _absorb(
        self, period: Period, dirty: frozenset[tuple[str, str]], mark: float
    ) -> list[Hypothesis]:
        counters = self._counters
        current = self._hypotheses
        for message in period.messages:
            pairs = candidate_pairs(period, message, self.tolerance)
            counters.observe_candidates(len(pairs))
            next_generation: dict[tuple[frozenset, frozenset], Hypothesis] = {}
            for hypothesis in current:
                for pair in pairs:
                    if not hypothesis.can_extend(pair):
                        continue
                    extended = hypothesis.extend(pair)
                    next_generation[extended.pairs, extended.period_pairs] = extended
            if not next_generation:
                raise EmptyHypothesisSpaceError(self._periods, len(pairs))
            if len(next_generation) > self.max_hypotheses:
                raise LearningError(
                    f"exact learner exceeded {self.max_hypotheses} hypotheses "
                    f"in period {self._periods}; use the bounded heuristic"
                )
            current = list(next_generation.values())
            self._messages += 1
            self._peak = max(self._peak, len(current))
        counters.process_seconds += time.perf_counter() - mark
        return current

    def _finish_period(self, pending: list[Hypothesis], dirty: frozenset[tuple[str, str]]) -> None:
        minimal = _remove_redundant(h.pairs for h in pending)
        self._hypotheses = [Hypothesis(pairs) for pairs in minimal]

    def result(self) -> LearningResult:
        ordered = sorted(
            self._hypotheses,
            key=lambda h: (h.weight(self.stats), sorted(h.pairs)),
        )
        return LearningResult(
            functions=[h.to_function(self.stats) for h in ordered],
            hypotheses=ordered,
            stats=self.stats,
            algorithm="exact",
            bound=None,
            periods=self._periods,
            messages=self._messages,
            peak_hypotheses=self._peak,
            elapsed_seconds=self._elapsed,
            hot_loop=self._counters.copy(),
        )


def learn_bounded_reference(
    trace: Trace,
    bound: int,
    tolerance: float = 0.0,
    distance: DistanceFunction = lattice.distance,
) -> LearningResult:
    """Run the reference (string-kernel) bounded heuristic over a trace."""
    learner = ReferenceBoundedLearner(trace.tasks, bound, tolerance, distance)
    learner.feed_trace(trace)
    return learner.result()


def learn_exact_reference(
    trace: Trace,
    tolerance: float = 0.0,
    max_hypotheses: int = 2_000_000,
) -> LearningResult:
    """Run the reference (string-kernel) exact algorithm over a trace."""
    learner = ReferenceExactLearner(trace.tasks, tolerance, max_hypotheses)
    learner.feed_trace(trace)
    return learner.result()


__all__ = [
    "pair_value",
    "extension_delta",
    "union_weight",
    "set_weight",
    "flip_delta",
    "ReferenceBoundedLearner",
    "ReferenceExactLearner",
    "learn_bounded_reference",
    "learn_exact_reference",
]
