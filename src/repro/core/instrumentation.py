"""Hot-loop instrumentation for the incremental learners.

The bounded heuristic's claim to fame is the polynomial per-period cost
``O(m b^2 + m b t^2)`` (paper Theorems 2/3); these counters let the
benchmark drivers *attest* that claim instead of asserting it. Every
learner carries one :class:`HotLoopCounters` instance, updates it inside
``feed``, and attaches a snapshot to the
:class:`~repro.core.result.LearningResult` it returns. Rendering lives in
:mod:`repro.bench.reporting` (``format_hot_loop``) and behind the CLI's
``repro learn --hot-loop`` flag.

Counting is cheap (integer adds and ``perf_counter`` reads per phase, not
per hypothesis), so instrumentation is always on.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable[..., object])


def hot_loop(func: F) -> F:
    """Marker: *func* is a mask-kernel hot loop; purity is lint-enforced.

    A zero-cost decorator (the function is returned unchanged, with an
    attribute stamped for introspection). Marked functions promise to
    operate on the interned integer representation only — no mask
    decoding, no string pair-set construction, no per-iteration string
    formatting — and ``repro-lint`` rule RL002 statically enforces that
    promise on every commit. Conversely, every loop-bearing function in
    the kernel modules must either carry this marker or a
    ``# repro-lint: ignore[RL002]`` waiver identifying it as boundary
    code.
    """
    func.__repro_hot_loop__ = True  # type: ignore[attr-defined]
    return func


@dataclass
class HotLoopCounters:
    """Per-run counters and phase timings of a learner's ``feed`` loop.

    Attributes
    ----------
    periods:
        Periods successfully absorbed (rolled-back periods don't count).
    messages:
        Message occurrences processed across those periods.
    clean_periods:
        Periods that produced no dirty pairs — on these, the incremental
        weight refresh does no work beyond reusing carried weights.
    dirty_pairs:
        Total dirty ordered pairs reported by
        :meth:`~repro.core.stats.CoExecutionStats.add_period`; flips are
        one-way, so this is bounded by ``t^2`` over a whole run.
    weight_refresh_incremental:
        Carried-over hypotheses whose weight was refreshed by applying
        dirty-pair deltas (no from-scratch Definition 8 evaluation).
    weight_refresh_scratch:
        Carried-over hypotheses whose weight had to be recomputed from
        scratch during the per-period refresh (only after a checkpoint
        resume, or with incremental maintenance disabled).
    weight_scratch_calls:
        All from-scratch Definition 8 evaluations anywhere in the hot
        loop, including per-period repairs of merged lineages.
    reassignments:
        Merged-lineage repairs (``_reassign_period`` backtracks).
    candidates_total / candidates_max:
        Sum and maximum of candidate-set sizes ``|A_m|`` over processed
        messages.
    stats_seconds / refresh_seconds / process_seconds / post_seconds:
        Wall-clock per phase: statistics update, weight refresh, message
        processing, and end-of-period post-processing.
    shard_failures:
        Worker-raised exceptions observed by the shard runtime
        (:mod:`repro.core.shardexec`); excludes pool breakage, which
        cannot be attributed to one shard.
    shard_timeouts:
        Shards whose wall-clock deadline (``ShardPolicy.timeout``)
        expired before the worker returned.
    shard_retries:
        Resubmissions charged to a shard's *own* failure or timeout.
    shard_splits:
        Bisections of a repeatedly-failing shard into two period ranges.
    pool_rebuilds:
        Process-pool teardowns followed by a rebuild (after breakage or
        a timeout — a hung worker can only be removed by teardown).
    pool_requeues:
        In-flight shards requeued because the pool went away underneath
        them (collateral, not charged as retries).
    degraded_shards:
        Shards learned by the in-process sequential fallback.
    batch_messages:
        Messages whose child generation ran through the batch kernel's
        vectorized pool × candidate step (:mod:`repro.core.batch`).
    batch_children:
        Child hypotheses produced in bulk by those steps (feasible
        cells of the generation matrix).
    batch_relayouts:
        Compact mask-column layout growths — mid-period re-encodes of
        the in-flight pool after the interned pair set crossed a word
        boundary.
    wire_tasks_sent:
        Shard tasks framed and dispatched to remote workers by the TCP
        coordinator (:mod:`repro.distributed`), counting re-dispatches.
    wire_results:
        Result frames received back (including duplicates and stale
        deliveries, before deduplication).
    wire_bytes_sent / wire_bytes_received:
        Framed payload bytes over all worker connections.
    wire_duplicates:
        Result frames discarded because the task already had a result
        (chaos-duplicated sends, or a stolen task finishing twice).
    wire_reorders:
        Results delivered out of dispatch order by a single worker
        (harmless — the LUB merge is order-free — but counted).
    tasks_stolen:
        Outstanding tasks re-dispatched to another worker because the
        owner sat on them past the steal deadline (work stealing; this
        is what recovers a chaos-dropped result frame).
    worker_connects:
        Worker connections that completed the handshake.
    worker_disconnects:
        Worker connections lost (EOF, reset, or chaos ``disconnect``);
        their outstanding tasks are requeued.
    dead_workers:
        Workers declared dead after missing the heartbeat deadline.
    sessions_opened:
        Streaming sessions created by the service daemon
        (:mod:`repro.service`); resumes are counted separately.
    sessions_resumed:
        Sessions brought back live from a spooled checkpoint (an
        ``open`` of an evicted session).
    sessions_evicted:
        Sessions checkpointed to the spool and dropped from memory
        (LRU pressure or an explicit ``evict`` op).
    sessions_closed:
        Sessions ended by a ``close`` op (their learner counters are
        folded into the daemon aggregate at that moment).
    sessions_failed:
        Sessions torn down by the degrade policy after exhausting feed
        retries (``SessionPolicy.degrade == "close"``).
    session_appends:
        Append/events frames admitted into session queues (duplicates
        excluded).
    session_duplicates:
        Frames discarded by the exactly-once sequence ledger (a client
        re-sent an already-acked frame after reconnecting).
    session_feed_errors:
        Feed attempts that raised and were rolled back by the learner's
        all-or-nothing ``feed`` envelope.
    session_feed_retries:
        Deterministic re-feeds charged after such an error
        (``SessionPolicy.retries``).
    session_queue_peak:
        Highest number of ops co-queued in any one session's bounded
        ingest queue (a max, like ``candidates_max``; bounded above by
        ``SessionPolicy.queue_depth``).
    """

    periods: int = 0
    messages: int = 0
    clean_periods: int = 0
    dirty_pairs: int = 0
    weight_refresh_incremental: int = 0
    weight_refresh_scratch: int = 0
    weight_scratch_calls: int = 0
    reassignments: int = 0
    candidates_total: int = 0
    candidates_max: int = 0
    stats_seconds: float = 0.0
    refresh_seconds: float = 0.0
    process_seconds: float = 0.0
    post_seconds: float = 0.0
    shard_failures: int = 0
    shard_timeouts: int = 0
    shard_retries: int = 0
    shard_splits: int = 0
    pool_rebuilds: int = 0
    pool_requeues: int = 0
    degraded_shards: int = 0
    batch_messages: int = 0
    batch_children: int = 0
    batch_relayouts: int = 0
    wire_tasks_sent: int = 0
    wire_results: int = 0
    wire_bytes_sent: int = 0
    wire_bytes_received: int = 0
    wire_duplicates: int = 0
    wire_reorders: int = 0
    tasks_stolen: int = 0
    worker_connects: int = 0
    worker_disconnects: int = 0
    dead_workers: int = 0
    sessions_opened: int = 0
    sessions_resumed: int = 0
    sessions_evicted: int = 0
    sessions_closed: int = 0
    sessions_failed: int = 0
    session_appends: int = 0
    session_duplicates: int = 0
    session_feed_errors: int = 0
    session_feed_retries: int = 0
    session_queue_peak: int = 0

    def observe_candidates(self, size: int) -> None:
        """Record one message's candidate-set size ``|A_m|``."""
        self.messages += 1
        self.candidates_total += size
        if size > self.candidates_max:
            self.candidates_max = size

    def copy(self) -> "HotLoopCounters":
        """An independent snapshot (results must not alias live counters)."""
        return dataclasses.replace(self)

    def merge(self, other: "HotLoopCounters") -> None:
        """Fold another run's counters into this one (shard merging).

        Sums and maxima compose the obvious way; phase seconds add up to
        total CPU work across shards (wall clock is tracked separately by
        the coordinating caller).
        """
        for f in dataclasses.fields(self):
            if f.name in ("candidates_max", "session_queue_peak"):
                setattr(
                    self, f.name, max(getattr(self, f.name), getattr(other, f.name))
                )
            else:
                setattr(
                    self, f.name, getattr(self, f.name) + getattr(other, f.name)
                )

    @property
    def mean_candidates(self) -> float:
        """Mean ``|A_m|`` over all processed messages (0.0 before any)."""
        if not self.messages:
            return 0.0
        return self.candidates_total / self.messages

    def as_dict(self) -> dict[str, object]:
        """Field name → value, plus the derived mean candidate size.

        The machine-readable twin of :meth:`as_rows`; this is what the
        pipeline's ``--profile-json`` output embeds.
        """
        data: dict[str, object] = {
            f.name: getattr(self, f.name) for f in dataclasses.fields(self)
        }
        data["mean_candidates"] = self.mean_candidates
        return data

    def as_rows(self) -> list[tuple[str, object]]:
        """``(name, value)`` rows for table rendering."""
        return [
            ("periods", self.periods),
            ("messages", self.messages),
            ("clean periods (no dirty pairs)", self.clean_periods),
            ("dirty pairs (total)", self.dirty_pairs),
            ("weight refreshes, incremental", self.weight_refresh_incremental),
            ("weight refreshes, from scratch", self.weight_refresh_scratch),
            ("from-scratch weight evaluations", self.weight_scratch_calls),
            ("period reassignments", self.reassignments),
            ("candidate pairs (total)", self.candidates_total),
            ("candidate pairs (max |A_m|)", self.candidates_max),
            ("stats update (s)", self.stats_seconds),
            ("weight refresh (s)", self.refresh_seconds),
            ("message processing (s)", self.process_seconds),
            ("post-processing (s)", self.post_seconds),
            ("shard failures", self.shard_failures),
            ("shard timeouts", self.shard_timeouts),
            ("shard retries", self.shard_retries),
            ("shard splits", self.shard_splits),
            ("pool rebuilds", self.pool_rebuilds),
            ("pool requeues (collateral)", self.pool_requeues),
            ("degraded shards (in-process)", self.degraded_shards),
            ("batch-kernel messages", self.batch_messages),
            ("batch-kernel children (bulk)", self.batch_children),
            ("batch-kernel mask relayouts", self.batch_relayouts),
            ("wire tasks sent", self.wire_tasks_sent),
            ("wire results received", self.wire_results),
            ("wire bytes sent", self.wire_bytes_sent),
            ("wire bytes received", self.wire_bytes_received),
            ("wire duplicate results", self.wire_duplicates),
            ("wire reordered results", self.wire_reorders),
            ("tasks stolen (work stealing)", self.tasks_stolen),
            ("worker connects", self.worker_connects),
            ("worker disconnects", self.worker_disconnects),
            ("dead workers (heartbeat)", self.dead_workers),
            ("sessions opened", self.sessions_opened),
            ("sessions resumed (from spool)", self.sessions_resumed),
            ("sessions evicted (to spool)", self.sessions_evicted),
            ("sessions closed", self.sessions_closed),
            ("sessions failed (degraded)", self.sessions_failed),
            ("session appends admitted", self.session_appends),
            ("session duplicate frames", self.session_duplicates),
            ("session feed errors (rolled back)", self.session_feed_errors),
            ("session feed retries", self.session_feed_retries),
            ("session queue peak", self.session_queue_peak),
        ]
