"""Learner checkpointing: save and resume long learning runs.

Field traces arrive in sessions (a day of logging at a time); the
incremental learners already support feeding periods across calls, and
this module makes their state durable between processes::

    learner = BoundedLearner(tasks, bound=32)
    learner.feed_trace(monday_trace)
    save_checkpoint(learner, "monday.ckpt.json")

    # next session
    learner = load_checkpoint("monday.ckpt.json")
    learner.feed_trace(tuesday_trace)

The checkpoint captures the complete learner state: the task universe,
the co-execution statistics, the hypothesis pair sets, the bound and
tolerance, and the run counters. Resuming is bit-identical to having fed
both traces in one process (asserted by tests).
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.exact import ExactLearner
from repro.core.heuristic import BoundedLearner
from repro.core.stats import CoExecutionStats
from repro.errors import LearningError

FORMAT_NAME = "repro-learner-checkpoint"
FORMAT_VERSION = 1


def _stats_to_dict(stats: CoExecutionStats) -> dict[str, Any]:
    return {
        "tasks": list(stats.tasks),
        "periods": stats.period_count,
        "version": stats.version,
        "executions": {
            task: stats.execution_count(task) for task in stats.tasks
        },
        "exclusive": [
            [s, r, stats.exclusive_count(s, r)]
            for s in stats.tasks
            for r in stats.tasks
            if s != r and stats.exclusive_count(s, r) > 0
        ],
    }


def _stats_from_dict(data: dict[str, Any]) -> CoExecutionStats:
    stats = CoExecutionStats(tuple(data["tasks"]))
    # Rebuild private state directly; the class owns no other invariants
    # beyond these counters.
    stats._periods = int(data["periods"])
    stats.version = int(data["version"])
    stats._executions = {
        task: int(count) for task, count in data["executions"].items()
    }
    stats._exclusive = {
        (s, r): int(count) for s, r, count in data["exclusive"]
    }
    return stats


def checkpoint_to_dict(
    learner: BoundedLearner | ExactLearner,
) -> dict[str, Any]:
    """The JSON-ready dictionary form of a learner's state.

    Checkpoints are only meaningful at period boundaries (per-period
    assumptions are transient); both learners satisfy that between
    ``feed`` calls.
    """
    if isinstance(learner, BoundedLearner):
        kind = "bounded"
        extra: dict[str, Any] = {
            "bound": learner.bound,
            "merges": learner._merges,
        }
    elif isinstance(learner, ExactLearner):
        kind = "exact"
        extra = {"max_hypotheses": learner.max_hypotheses}
    else:
        raise LearningError(f"cannot checkpoint {type(learner).__name__}")
    # The learners keep their pool as pair-index bitmasks; the public
    # checkpoint format stays string pairs. Decoding via sorted_pairs_of
    # yields index order == lexicographic order, so the JSON is identical
    # to what the pre-kernel format produced.
    table = learner.table
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "kind": kind,
        "tolerance": learner.tolerance,
        "stats": _stats_to_dict(learner.stats),
        "hypotheses": [
            [list(pair) for pair in table.sorted_pairs_of(mask)]
            for mask in learner._masks
        ],
        "periods": learner._periods,
        "messages": learner._messages,
        "peak": learner._peak,
        "elapsed": learner._elapsed,
        **extra,
    }


def checkpoint_from_dict(
    data: dict[str, Any],
    kernel: str = "loop",
) -> BoundedLearner | ExactLearner:
    """Rebuild a learner from its checkpoint dictionary.

    *kernel* selects the mask-kernel backend of the resumed learner
    (``"loop"`` or ``"batch"`` — resolve ``"auto"`` with
    :func:`repro.core.batch.resolve_kernel` first). The checkpoint
    format itself is kernel-agnostic: both backends save and restore
    byte-identical JSON, so a run may checkpoint under one kernel and
    resume under the other.
    """
    if data.get("format") != FORMAT_NAME:
        raise LearningError(
            f"unexpected checkpoint format: {data.get('format')!r}"
        )
    if data.get("version") != FORMAT_VERSION:
        raise LearningError(
            f"unsupported checkpoint version: {data.get('version')!r}"
        )
    stats = _stats_from_dict(data["stats"])
    kind = data.get("kind")
    if kernel == "batch":
        from repro.core.batch import BatchBoundedLearner, BatchExactLearner

        bounded_cls, exact_cls = BatchBoundedLearner, BatchExactLearner
    else:
        bounded_cls, exact_cls = BoundedLearner, ExactLearner
    learner: BoundedLearner | ExactLearner
    if kind == "bounded":
        learner = bounded_cls(
            stats.tasks, int(data["bound"]), float(data["tolerance"])
        )
        learner._merges = int(data.get("merges", 0))
    elif kind == "exact":
        learner = exact_cls(
            stats.tasks,
            float(data["tolerance"]),
            int(data.get("max_hypotheses", 2_000_000)),
        )
    else:
        raise LearningError(f"unknown learner kind: {kind!r}")
    learner.stats = stats
    # Translate the public string pairs back into the learner's interned
    # masks. The kernel's weight table is rebuilt lazily on the next feed
    # (the learner detects the statistics drift), and carried weights are
    # absent on purpose: the first refresh recomputes them from scratch.
    mask_of = learner.table.mask_of
    learner._masks = [
        mask_of(tuple(pair) for pair in pairs)
        for pairs in data["hypotheses"]
    ]
    learner._decoded = None
    learner._periods = int(data["periods"])
    learner._messages = int(data["messages"])
    learner._peak = int(data["peak"])
    learner._elapsed = float(data["elapsed"])
    return learner


def save_checkpoint(
    learner: BoundedLearner | ExactLearner, path: str
) -> None:
    """Write the learner's state to *path* as JSON."""
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(checkpoint_to_dict(learner), stream)


def load_checkpoint(
    path: str, kernel: str = "loop"
) -> BoundedLearner | ExactLearner:
    """Rebuild a learner from the checkpoint at *path*."""
    with open(path, "r", encoding="utf-8") as stream:
        try:
            data = json.load(stream)
        except json.JSONDecodeError as error:
            raise LearningError(f"invalid checkpoint JSON: {error}") from error
    return checkpoint_from_dict(data, kernel=kernel)
