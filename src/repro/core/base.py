"""Shared scaffold of the incremental learners.

:class:`ExactLearner` and :class:`BoundedLearner` used to duplicate the
entire ``feed`` envelope: snapshot the counters, fold the period into the
co-execution statistics, process the messages, and — on any failure —
un-absorb the period and restore every counter so the call is
all-or-nothing. Only the middle differs between the two algorithms, so
this base class owns the envelope and the subclasses supply three hooks:

``_save_run_state()`` / ``_restore_run_state(state)``
    Capture and restore the algorithm-specific run counters that the
    message loop mutates (message count, peak set size, merges, ...).

``_absorb(period, dirty, mark)``
    The per-message hot loop. Receives the dirty ordered pairs reported
    by :meth:`~repro.core.stats.CoExecutionStats.add_period` and the
    ``perf_counter`` timestamp at which the statistics phase ended; must
    account its own phase seconds on ``self._counters``. Whatever it
    returns is handed to ``_finish_period`` untouched. Raising restores
    the learner to its pre-call state.

``_finish_period(pending, dirty)``
    End-of-period post-processing (assumption removal, unification);
    runs after the all-or-nothing window, so it must not fail on valid
    state.

The envelope also owns the shared bookkeeping every ``feed`` ends with:
period/dirty-pair/clean-period counters, the post-processing phase
timer, and the learner's elapsed-seconds total.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

from repro.core.hypothesis import Hypothesis
from repro.core.instrumentation import HotLoopCounters
from repro.core.interning import TaskTable
from repro.core.result import LearningResult
from repro.core.stats import CoExecutionStats
from repro.trace.period import Period
from repro.trace.trace import Trace


class IncrementalLearner:
    """Base of the incremental learners: all-or-nothing ``feed`` envelope."""

    def __init__(self, tasks: Iterable[str], tolerance: float = 0.0) -> None:
        self.stats = CoExecutionStats(tasks)
        self.tolerance = tolerance
        self._counters = HotLoopCounters()
        self._periods = 0
        self._messages = 0
        self._peak = 1
        self._elapsed = 0.0

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------

    def _save_run_state(self) -> object:
        """Snapshot the run counters the message loop mutates."""
        raise NotImplementedError

    def _restore_run_state(self, state: object) -> None:
        """Undo the message loop's counter mutations after a failure."""
        raise NotImplementedError

    def _absorb(
        self, period: Period, dirty: frozenset[tuple[str, str]], mark: float
    ) -> object:
        """Process one period's messages; returns post-processing input."""
        raise NotImplementedError

    def _finish_period(
        self, pending: object, dirty: frozenset[tuple[str, str]]
    ) -> None:
        """Drop per-period assumptions and unify the survivors."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------

    def feed(self, period: Period) -> None:
        """Process one instance (period).

        All-or-nothing: if the period cannot be absorbed — the hypothesis
        space empties or a safety cap trips — the learner is restored to
        its pre-call state (statistics un-absorbed, counters rolled back)
        so callers can catch the error and keep feeding.
        """
        started = time.perf_counter()
        counters = self._counters
        saved_counters = counters.copy()
        saved_run = self._save_run_state()
        dirty = self.stats.add_period(period.executed_tasks)
        try:
            mark = time.perf_counter()
            counters.stats_seconds += mark - started
            pending = self._absorb(period, dirty, mark)
        except Exception:
            self.stats.remove_period(period.executed_tasks)
            self._restore_run_state(saved_run)
            self._counters = saved_counters
            raise
        mark = time.perf_counter()
        self._finish_period(pending, dirty)
        counters.periods += 1
        counters.dirty_pairs += len(dirty)
        if not dirty:
            counters.clean_periods += 1
        self._periods += 1
        counters.post_seconds += time.perf_counter() - mark
        self._elapsed += time.perf_counter() - started

    def feed_trace(self, trace: Trace | Sequence[Period]) -> None:
        """Process every period of *trace* in order."""
        periods = trace.periods if isinstance(trace, Trace) else trace
        for period in periods:
            self.feed(period)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def hypothesis_count(self) -> int:
        return len(self._hypotheses)  # type: ignore[attr-defined]

    def result(self) -> LearningResult:
        """The current hypothesis set as a result object."""
        raise NotImplementedError


class MaskedLearner(IncrementalLearner):
    """Incremental learner whose working pool is pair-index bitmasks.

    The production learners keep their hypothesis pool as raw ``int``
    bitmasks over the pair indices of one shared
    :class:`~repro.core.interning.TaskTable` (``self.table``) — that is
    the whole point of the kernel rewrite: the hot loops never touch a
    frozenset. Everything outside the hot loops (checkpoints, sharding,
    ``result()``, tests poking at internals) still wants
    :class:`~repro.core.hypothesis.Hypothesis` objects, so this base
    exposes the pool through a ``_hypotheses`` property that decodes the
    masks lazily and caches the decoding until the pool changes:

    * reading ``_hypotheses`` decodes ``self._masks`` through
      :meth:`TaskTable.pairs_of` (subclasses may hook
      :meth:`_prime_decoded` to seed weight memos);
    * assigning ``_hypotheses`` — the checkpoint-restore path — encodes
      the given hypotheses' pair sets back into masks.

    Subclasses must set ``self._decoded = None`` whenever they replace
    ``self._masks`` so the cached decoding cannot go stale.
    """

    def __init__(self, tasks: Iterable[str], tolerance: float = 0.0) -> None:
        super().__init__(tasks, tolerance)
        self.table = TaskTable(self.stats.tasks)
        self._masks: list[int] = [0]
        self._decoded: list[Hypothesis] | None = None

    @property
    def _hypotheses(self) -> list[Hypothesis]:
        if self._decoded is None:
            pairs_of = self.table.pairs_of
            decoded = [Hypothesis(pairs_of(mask)) for mask in self._masks]
            self._prime_decoded(decoded)
            self._decoded = decoded
        return self._decoded

    @_hypotheses.setter
    def _hypotheses(self, hypotheses: list[Hypothesis]) -> None:
        mask_of = self.table.mask_of
        self._masks = [mask_of(h.pairs) for h in hypotheses]
        self._decoded = list(hypotheses)

    def _prime_decoded(self, decoded: list[Hypothesis]) -> None:
        """Hook: seed freshly decoded hypotheses (weight memos, ...)."""

    @property
    def hypothesis_count(self) -> int:
        return len(self._masks)
