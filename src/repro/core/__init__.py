"""Core learning machinery: the paper's primary contribution.

Public surface:

* :mod:`repro.core.lattice` — the dependency-value lattice ``V``;
* :mod:`repro.core.depfunc` — dependency functions ``d : T × T → V``;
* :mod:`repro.core.hypothesis` — pair-set hypotheses;
* :mod:`repro.core.candidates` — temporal sender/receiver candidates;
* :mod:`repro.core.matching` — the matching function ``M``;
* :mod:`repro.core.exact` / :mod:`repro.core.heuristic` — the two learners;
* :mod:`repro.core.interning` — the pair-index bitmask kernel the learners
  run on (``TaskTable`` / ``PairSet`` / ``WeightKernel``);
* :mod:`repro.core.reference` — the string-frozenset reference kernel kept
  for differential tests and benchmarks;
* :mod:`repro.core.learner` — the :func:`learn_dependencies` facade.
"""

from repro.core.depfunc import DependencyFunction, lub_many
from repro.core.checkpoint import (
    load_checkpoint,
    save_checkpoint,
)
from repro.core.exact import ExactLearner, learn_exact
from repro.core.heuristic import BoundedLearner, learn_bounded
from repro.core.hypothesis import Hypothesis
from repro.core.instrumentation import HotLoopCounters
from repro.core.interning import PairSet, TaskTable, WeightKernel, task_table
from repro.core.lattice import DepValue
from repro.core.learner import learn_dependencies, make_learner
from repro.core.matching import matches_period, matches_trace
from repro.core.negative import (
    EliminationReport,
    ForbiddenBehavior,
    NegativeVerdict,
    VersionSpace,
    rejects,
    violated_arrows,
)
from repro.core.result import LearningResult
from repro.core.sharded import learn_bounded_sharded
from repro.core.stats import CoExecutionStats
from repro.core.weights import (
    NAMED_DISTANCES,
    DistanceFunction,
    entry_count,
    linear_distance,
    square_distance,
)

__all__ = [
    "DepValue",
    "DependencyFunction",
    "lub_many",
    "Hypothesis",
    "TaskTable",
    "task_table",
    "PairSet",
    "WeightKernel",
    "CoExecutionStats",
    "matches_period",
    "matches_trace",
    "ExactLearner",
    "BoundedLearner",
    "learn_exact",
    "learn_bounded",
    "learn_bounded_sharded",
    "learn_dependencies",
    "make_learner",
    "LearningResult",
    "HotLoopCounters",
    "ForbiddenBehavior",
    "VersionSpace",
    "NegativeVerdict",
    "EliminationReport",
    "rejects",
    "violated_arrows",
    "DistanceFunction",
    "NAMED_DISTANCES",
    "square_distance",
    "linear_distance",
    "entry_count",
    "save_checkpoint",
    "load_checkpoint",
]
