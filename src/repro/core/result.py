"""Learning results: what a run of either algorithm returns.

A :class:`LearningResult` bundles the surviving most-specific hypotheses
(as materialized :class:`~repro.core.depfunc.DependencyFunction` objects),
their least upper bound (the paper's ``dLUB``, reported when the algorithm
does not converge to a single hypothesis), and run metadata used by the
benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.depfunc import DependencyFunction, lub_many
from repro.core.hypothesis import Hypothesis
from repro.core.instrumentation import HotLoopCounters
from repro.core.stats import CoExecutionStats


@dataclass
class LearningResult:
    """Outcome of a learning run.

    Attributes
    ----------
    functions:
        The surviving most-specific dependency functions, one per
        hypothesis, in deterministic order (ascending weight, then by the
        sorted pair set).
    hypotheses:
        The surviving hypotheses in pair-set form, aligned with
        ``functions``.
    stats:
        The co-execution statistics accumulated over the trace.
    algorithm:
        ``"exact"`` or ``"heuristic"``.
    bound:
        The heuristic's hypothesis bound; ``None`` for the exact algorithm.
    periods:
        Number of instances processed.
    messages:
        Number of message occurrences processed (the paper's ``m``).
    peak_hypotheses:
        Largest hypothesis-set size observed during the run — the exact
        algorithm's exponential growth shows up here.
    elapsed_seconds:
        Wall-clock learning time (excludes trace construction).
    workers:
        Number of parallel shards the trace was learned over (1 for the
        sequential learners). A ``workers > 1`` result is the sound LUB
        merge of per-shard bounded runs — see :mod:`repro.core.sharded`.
    kernel:
        Which mask-kernel backend produced the result: ``"loop"`` (the
        per-hypothesis interned-bitmask hot loop) or ``"batch"`` (the
        vectorized array-of-masks backend of :mod:`repro.core.batch`).
        The two are bit-for-bit identical in output; the field is run
        metadata for profiles and benchmarks.
    hot_loop:
        Hot-loop instrumentation snapshot
        (:class:`~repro.core.instrumentation.HotLoopCounters`): dirty-pair
        counts, weight-recompute counters, candidate-set sizes, and
        per-phase timings. ``None`` for results built outside the
        incremental learners.
    """

    functions: list[DependencyFunction]
    hypotheses: list[Hypothesis]
    stats: CoExecutionStats
    algorithm: str
    bound: int | None = None
    periods: int = 0
    messages: int = 0
    peak_hypotheses: int = 0
    elapsed_seconds: float = 0.0
    merge_count: int = field(default=0)
    workers: int = 1
    kernel: str = "loop"
    hot_loop: HotLoopCounters | None = None

    @property
    def converged(self) -> bool:
        """True if exactly one most-specific hypothesis survived."""
        return len(self.functions) == 1

    @property
    def unique(self) -> DependencyFunction:
        """The single surviving function; raises if not converged."""
        if not self.converged:
            raise ValueError(
                f"algorithm did not converge: {len(self.functions)} hypotheses remain"
            )
        return self.functions[0]

    def lub(self) -> DependencyFunction:
        """The pointwise LUB of all surviving functions (paper's ``dLUB``)."""
        return lub_many(self.functions)

    def minimal_functions(self) -> list[DependencyFunction]:
        """The most-specific subset of the surviving functions.

        The exact algorithm already prunes dominated hypotheses; the
        bounded heuristic keeps them (its Lemma guarantee lives in the
        whole list's LUB), so use this accessor when only the minimal
        frontier is of interest.
        """
        return [
            function
            for function in self.functions
            if not any(
                other.lt(function) for other in self.functions
            )
        ]

    def summary(self) -> str:
        """A short human-readable report of the run."""
        lines = [
            f"algorithm       : {self.algorithm}"
            + (f" (bound={self.bound})" if self.bound is not None else "")
            + (f" (workers={self.workers})" if self.workers > 1 else ""),
            f"periods         : {self.periods}",
            f"messages        : {self.messages}",
            f"hypotheses left : {len(self.functions)}",
            f"peak hypotheses : {self.peak_hypotheses}",
            f"converged       : {self.converged}",
            f"elapsed         : {self.elapsed_seconds:.3f} s",
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"LearningResult(algorithm={self.algorithm!r}, bound={self.bound}, "
            f"hypotheses={len(self.functions)}, converged={self.converged})"
        )
