"""The exact (exponential) generalization algorithm (paper Section 3.1).

The learner starts from the singleton set ``{d⊥}`` and processes one period
at a time. Within a period it analyzes each message in bus order: every
current hypothesis is extended with every feasible sender-receiver
assumption for the message (feasible = temporally possible and not already
used for another message of the same period). Hypotheses with no feasible
extension die. At the end of the period the per-period assumptions are
dropped, equal hypotheses are unified, and hypotheses that are strict
generalizations of another survivor are deleted.

The hypothesis set grows exponentially in the number of messages in the
worst case; Theorem 1 shows the underlying problem is NP-hard, so this is
unavoidable for an exact most-specific-set algorithm.

The working set lives on the interned bitmask kernel
(:mod:`repro.core.interning`): a hypothesis in flight is a ``(mask,
period_mask)`` int pair, extension is a bitwise OR, dedup keys are the int
pairs themselves, and the paper's redundancy elimination is a mask subset
test — which matters doubly here because the exponential set makes every
per-hypothesis constant factor hurt.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

from repro.core.base import MaskedLearner
from repro.core.instrumentation import hot_loop
from repro.core.candidates import candidate_pairs
from repro.core.result import LearningResult
from repro.errors import EmptyHypothesisSpaceError, LearningError
from repro.trace.period import Period
from repro.trace.trace import Trace


@hot_loop
def _remove_redundant_masks(masks: Iterable[int]) -> list[int]:
    """Keep only minimal pair masks under inclusion.

    With shared statistics, pair-set inclusion coincides with the pointwise
    dependency-function order, so deleting strict supersets is exactly the
    paper's redundancy elimination. On masks, ``kept ⊂ candidate`` is the
    subset test ``kept & candidate == kept`` (strictness is free: the
    inputs are deduplicated first).
    """
    unique = set(masks)
    by_size = sorted(unique, key=lambda mask: mask.bit_count())
    minimal: list[int] = []
    for candidate in by_size:
        if not any(kept & candidate == kept for kept in minimal):
            minimal.append(candidate)
    return minimal


class ExactLearner(MaskedLearner):
    """Incremental exact learner over a fixed task universe.

    Feed periods one at a time with :meth:`feed` (all-or-nothing, see
    :class:`~repro.core.base.IncrementalLearner`); read the current
    most-specific set at any point with :meth:`result`.

    Parameters
    ----------
    tasks:
        The task universe ``T``.
    tolerance:
        Timing tolerance passed to candidate computation.
    max_hypotheses:
        Safety valve: abort with :class:`~repro.errors.LearningError` if the
        working set exceeds this size (the exact algorithm is exponential;
        runaway inputs are better stopped than swapped to death).
    """

    def __init__(
        self,
        tasks: Iterable[str],
        tolerance: float = 0.0,
        max_hypotheses: int = 2_000_000,
    ):
        super().__init__(tasks, tolerance)
        self.max_hypotheses = max_hypotheses

    # ------------------------------------------------------------------
    # Learning (the base class owns the all-or-nothing envelope)
    # ------------------------------------------------------------------

    def _save_run_state(self) -> object:
        return (self._messages, self._peak)

    def _restore_run_state(self, state: object) -> None:
        self._messages, self._peak = state

    @hot_loop
    def _absorb(
        self, period: Period, dirty: frozenset[tuple[str, str]], mark: float
    ) -> Sequence[tuple[int, int]]:
        counters = self._counters
        table = self.table
        current: Sequence[tuple[int, int]] = [(mask, 0) for mask in self._masks]
        for message in period.messages:
            pairs = candidate_pairs(period, message, self.tolerance)
            counters.observe_candidates(len(pairs))
            bits = table.bits_of(pairs)
            next_generation: dict[tuple[int, int], None] = {}
            for mask, period_mask in current:
                for bit in bits:
                    if period_mask & bit:
                        continue
                    next_generation[mask | bit, period_mask | bit] = None
            if not next_generation:
                raise EmptyHypothesisSpaceError(self._periods, len(pairs))
            if len(next_generation) > self.max_hypotheses:
                raise LearningError(
                    f"exact learner exceeded {self.max_hypotheses} hypotheses "
                    f"in period {self._periods}; use the bounded heuristic"
                )
            current = list(next_generation)
            self._messages += 1
            self._peak = max(self._peak, len(current))
        counters.process_seconds += time.perf_counter() - mark
        return current

    def _finish_period(
        self, pending: Sequence[tuple[int, int]], dirty: frozenset[tuple[str, str]]
    ) -> None:
        # Drop assumptions, unify, remove redundant.
        self._masks = _remove_redundant_masks(mask for mask, _pmask in pending)
        self._decoded = None

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def result(self) -> LearningResult:
        """The current most-specific hypothesis set as a result object."""
        ordered = sorted(
            self._hypotheses,
            key=lambda h: (h.weight(self.stats), sorted(h.pairs)),
        )
        return LearningResult(
            functions=[h.to_function(self.stats) for h in ordered],
            hypotheses=ordered,
            stats=self.stats,
            algorithm="exact",
            bound=None,
            periods=self._periods,
            messages=self._messages,
            peak_hypotheses=self._peak,
            elapsed_seconds=self._elapsed,
            hot_loop=self._counters.copy(),
        )


def learn_exact(
    trace: Trace,
    tolerance: float = 0.0,
    max_hypotheses: int = 2_000_000,
) -> LearningResult:
    """Run the exact algorithm over a complete trace."""
    learner = ExactLearner(trace.tasks, tolerance, max_hypotheses)
    learner.feed_trace(trace)
    return learner.result()
