"""The exact (exponential) generalization algorithm (paper Section 3.1).

The learner starts from the singleton set ``{d⊥}`` and processes one period
at a time. Within a period it analyzes each message in bus order: every
current hypothesis is extended with every feasible sender-receiver
assumption for the message (feasible = temporally possible and not already
used for another message of the same period). Hypotheses with no feasible
extension die. At the end of the period the per-period assumptions are
dropped, equal hypotheses are unified, and hypotheses that are strict
generalizations of another survivor are deleted.

The hypothesis set grows exponentially in the number of messages in the
worst case; Theorem 1 shows the underlying problem is NP-hard, so this is
unavoidable for an exact most-specific-set algorithm.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

from repro.core.candidates import candidate_pairs
from repro.core.hypothesis import Hypothesis, Pair
from repro.core.instrumentation import HotLoopCounters
from repro.core.result import LearningResult
from repro.core.stats import CoExecutionStats
from repro.errors import EmptyHypothesisSpaceError, LearningError
from repro.trace.period import Period
from repro.trace.trace import Trace


def _remove_redundant(pair_sets: Iterable[frozenset[Pair]]) -> list[frozenset[Pair]]:
    """Keep only minimal pair sets under inclusion.

    With shared statistics, pair-set inclusion coincides with the pointwise
    dependency-function order, so deleting strict supersets is exactly the
    paper's redundancy elimination.
    """
    unique = set(pair_sets)
    by_size = sorted(unique, key=len)
    minimal: list[frozenset[Pair]] = []
    for candidate in by_size:
        if not any(kept < candidate for kept in minimal):
            minimal.append(candidate)
    return minimal


class ExactLearner:
    """Incremental exact learner over a fixed task universe.

    Feed periods one at a time with :meth:`feed`; read the current
    most-specific set at any point with :meth:`result`.

    Parameters
    ----------
    tasks:
        The task universe ``T``.
    tolerance:
        Timing tolerance passed to candidate computation.
    max_hypotheses:
        Safety valve: abort with :class:`~repro.errors.LearningError` if the
        working set exceeds this size (the exact algorithm is exponential;
        runaway inputs are better stopped than swapped to death).
    """

    def __init__(
        self,
        tasks: Iterable[str],
        tolerance: float = 0.0,
        max_hypotheses: int = 2_000_000,
    ):
        self.stats = CoExecutionStats(tasks)
        self.tolerance = tolerance
        self.max_hypotheses = max_hypotheses
        self._hypotheses: list[Hypothesis] = [Hypothesis.most_specific()]
        self._counters = HotLoopCounters()
        self._periods = 0
        self._messages = 0
        self._peak = 1
        self._elapsed = 0.0

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------

    def feed(self, period: Period) -> None:
        """Process one instance (period).

        All-or-nothing: if the period cannot be absorbed — the hypothesis
        space empties or the safety cap trips — the learner is restored
        to its pre-call state so callers can catch the error and keep
        feeding.
        """
        started = time.perf_counter()
        counters = self._counters
        saved_counters = counters.copy()
        saved_run = (self._messages, self._peak)
        dirty = self.stats.add_period(period.executed_tasks)
        current = self._hypotheses
        try:
            mark = time.perf_counter()
            counters.stats_seconds += mark - started
            for message in period.messages:
                pairs = candidate_pairs(period, message, self.tolerance)
                counters.observe_candidates(len(pairs))
                next_generation: dict[tuple[frozenset, frozenset], Hypothesis] = {}
                for hypothesis in current:
                    for pair in pairs:
                        if not hypothesis.can_extend(pair):
                            continue
                        extended = hypothesis.extend(pair)
                        next_generation[extended.pairs, extended.period_pairs] = extended
                if not next_generation:
                    raise EmptyHypothesisSpaceError(self._periods, len(pairs))
                if len(next_generation) > self.max_hypotheses:
                    raise LearningError(
                        f"exact learner exceeded {self.max_hypotheses} hypotheses "
                        f"in period {self._periods}; use the bounded heuristic"
                    )
                current = list(next_generation.values())
                self._messages += 1
                self._peak = max(self._peak, len(current))
            counters.process_seconds += time.perf_counter() - mark
        except Exception:
            self.stats.remove_period(period.executed_tasks)
            self._messages, self._peak = saved_run
            self._counters = saved_counters
            raise
        mark = time.perf_counter()
        # Post-processing: drop assumptions, unify, remove redundant.
        minimal = _remove_redundant(h.pairs for h in current)
        self._hypotheses = [Hypothesis(pairs) for pairs in minimal]
        counters.periods += 1
        counters.dirty_pairs += len(dirty)
        if not dirty:
            counters.clean_periods += 1
        self._periods += 1
        counters.post_seconds += time.perf_counter() - mark
        self._elapsed += time.perf_counter() - started

    def feed_trace(self, trace: Trace | Sequence[Period]) -> None:
        """Process every period of *trace* in order."""
        periods = trace.periods if isinstance(trace, Trace) else trace
        for period in periods:
            self.feed(period)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def hypothesis_count(self) -> int:
        return len(self._hypotheses)

    def result(self) -> LearningResult:
        """The current most-specific hypothesis set as a result object."""
        ordered = sorted(
            self._hypotheses,
            key=lambda h: (h.weight(self.stats), sorted(h.pairs)),
        )
        return LearningResult(
            functions=[h.to_function(self.stats) for h in ordered],
            hypotheses=ordered,
            stats=self.stats,
            algorithm="exact",
            bound=None,
            periods=self._periods,
            messages=self._messages,
            peak_hypotheses=self._peak,
            elapsed_seconds=self._elapsed,
            hot_loop=self._counters.copy(),
        )


def learn_exact(
    trace: Trace,
    tolerance: float = 0.0,
    max_hypotheses: int = 2_000_000,
) -> LearningResult:
    """Run the exact algorithm over a complete trace."""
    learner = ExactLearner(trace.tasks, tolerance, max_hypotheses)
    learner.feed_trace(trace)
    return learner.result()
