"""The bounded heuristic learner (paper Section 3.2) on the mask kernel.

The exact algorithm's hypothesis set grows exponentially; the heuristic
replaces the unordered set with a weight-ordered working list of at most
``bound`` hypotheses. Every time an extension pushes the list one past the
bound, the two hypotheses of least weight are replaced by their least upper
bound (pair-set union). Weight is the paper's Definition 8: the sum over
all ordered task pairs of the square distance of the pair's dependency
value from the lattice bottom, so merging the lightest pair sacrifices the
least specificity.

The heuristic is sound (Theorem 2) but conservative: the result is no
longer guaranteed to be the most-specific set. The paper's Lemma shows the
LUB of its output equals the bound-1 output, and Theorem 4 that on
convergence it coincides with the exact result; both are checked
empirically by ``repro.theory.theorems`` and experiment E4.

Three implementation notes:

* The hot loop runs entirely on the interned representation of
  :mod:`repro.core.interning`: a hypothesis in flight is a ``(mask,
  period_mask, weight)`` triple of two ints and a number. Extension is
  ``mask | bit``, the LUB merge is ``|``, pool dedup keys are ``(mask,
  period_mask)`` int tuples, and every Definition 8 delta is a couple of
  list lookups in the :class:`~repro.core.interning.WeightKernel` term
  table. Because the table assigns pair indices in lexicographic order,
  iterating candidate bits ascending, sorting, dict insertion and heap
  tie-breaking all reproduce the string-kernel reference
  (:mod:`repro.core.reference`) bit for bit — asserted by the property
  tests.
* Weights are maintained incrementally, both *within* and *across*
  periods. Within a period, extending a hypothesis by one pair changes at
  most two dependency-function entries (the pair and its mirror), so the
  child's weight is the parent's plus an O(1) delta; a merge adds one
  delta per pair unique to the second parent. Across periods, the only
  thing that can change a carried hypothesis's weight is an
  ``always_implies`` flip, and :meth:`CoExecutionStats.add_period` reports
  exactly the flipped (*dirty*) ordered pairs — so the per-period refresh
  applies one O(1) delta per dirty pair intersecting the hypothesis's
  touched set instead of re-evaluating Definition 8 over all ``t^2``
  entries. The same dirty indices refresh the kernel's term table (and
  un-refresh it when a failed period rolls back). This is what makes the
  paper's ``O(m b^2 + m b t^2)`` bound reachable in Python; the
  :class:`~repro.core.instrumentation.HotLoopCounters` carried on the
  result attest it (zero from-scratch refreshes on periods with no dirty
  pairs).
* Merging must preserve a *valid per-period assignment*. A merged
  hypothesis inherits the first parent's per-period assumptions: they are
  a legal distinct assignment of the period's messages so far, and remain
  legal inside the union pair set. If a later message still finds every
  candidate claimed, the whole period's assignment is *recomputed* by
  backtracking over the period's candidate history, preferring pairs the
  hypothesis already assumed (so the recovery generalizes minimally).
  Both rules keep every kept hypothesis matching every processed instance,
  which is what Theorem 2 requires of the heuristic.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Iterable, Sequence

from repro.core import lattice
from repro.core.base import MaskedLearner
from repro.core.instrumentation import hot_loop
from repro.core.candidates import candidate_pairs
from repro.core.hypothesis import Hypothesis
from repro.core.interning import WeightKernel
from repro.core.reference import (  # noqa: F401  (re-exported reference helpers)
    extension_delta as _extension_delta,
    flip_delta as _flip_delta,
    pair_value as _pair_value,
    set_weight as _set_weight,
    union_weight as _union_weight,
)
from repro.core.result import LearningResult
from repro.core.weights import DistanceFunction, square_distance
from repro.errors import EmptyHypothesisSpaceError
from repro.trace.period import Period
from repro.trace.trace import Trace

#: Pool identity of an in-flight hypothesis: ``(pair mask, period mask)``.
_PoolKey = tuple[int, int]

#: One in-flight hypothesis: ``(pair mask, period mask, weight)``.
_Entry = tuple[int, int, int]


class BoundedLearner(MaskedLearner):
    """Incremental heuristic learner with a hypothesis bound.

    Parameters
    ----------
    tasks:
        The task universe ``T``.
    bound:
        Maximum number of hypotheses kept (paper's ``b``); must be >= 1.
    tolerance:
        Timing tolerance passed to candidate computation.
    distance:
        Per-value weight contribution (paper Definition 7 by default);
        see :mod:`repro.core.weights` for alternatives and the
        monotonicity requirement.
    incremental_weights:
        When True (the default), carried-over hypothesis weights are
        refreshed per period by dirty-pair deltas instead of from-scratch
        Definition 8 evaluation. The False setting re-derives every
        weight each period — it exists as the differential-testing and
        benchmarking baseline and learns bit-identical results.
    """

    def __init__(
        self,
        tasks: Iterable[str],
        bound: int,
        tolerance: float = 0.0,
        distance: DistanceFunction = lattice.distance,
        incremental_weights: bool = True,
    ):
        if bound < 1:
            raise ValueError(f"bound must be >= 1, got {bound}")
        super().__init__(tasks, tolerance)
        self.bound = bound
        self.distance = distance
        self._incremental = incremental_weights
        # The default distance is what Hypothesis.weight reports, so only
        # then may carried weights be primed into its memo.
        self._prime_memo = incremental_weights and (
            distance is lattice.distance or distance is square_distance
        )
        #: Carried Definition 8 weight per surviving pair mask. The empty
        #: hypothesis weighs 0 under any statistics and distance.
        self._weights: dict[int, int] = {0: 0}
        self._merges = 0
        self._sequence = itertools.count()
        #: Term table of the current statistics; (re)built lazily on the
        #: first absorb and maintained by dirty-index flips afterwards.
        self._kernel: WeightKernel | None = None
        self._kernel_version = -1

    # ------------------------------------------------------------------
    # Learning (the base class owns the all-or-nothing envelope)
    # ------------------------------------------------------------------

    def _save_run_state(self) -> object:
        return (self._messages, self._peak, self._merges)

    def _restore_run_state(self, state: object) -> None:
        self._messages, self._peak, self._merges = state
        # The rolled-back period's flips were undone in _absorb, so the
        # kernel again matches the statistics content — resync the version
        # marker (remove_period bumped it) so the next feed keeps the
        # incremental flip path instead of rebuilding the table.
        self._kernel_version = self.stats.version

    @hot_loop
    def _absorb(
        self, period: Period, dirty: frozenset[tuple[str, str]], mark: float
    ) -> list[_Entry]:
        counters = self._counters
        table = self.table
        dirty_indices = table.indices_of(dirty)
        version = self.stats.version
        if self._kernel is None or self._kernel_version != version - 1:
            # Fresh or drifted statistics (construction, checkpoint
            # restore, shard merge): rebuild the term table outright. The
            # post-add statistics already carry this period's flips.
            self._kernel = WeightKernel(table, self.stats, self.distance)
        elif dirty_indices:
            self._kernel.flip(dirty_indices)
        self._kernel_version = version
        try:
            entries = self._refresh_weights(dirty_indices)
            now = time.perf_counter()
            counters.refresh_seconds += now - mark
            mark = now
            history: list[tuple[int, ...]] = []
            for message in period.messages:
                pairs = candidate_pairs(period, message, self.tolerance)
                if not pairs:
                    raise EmptyHypothesisSpaceError(self._periods)
                counters.observe_candidates(len(pairs))
                bits = table.bits_of(pairs)
                history.append(bits)
                entries = self._process_message(entries, bits, history)
                self._messages += 1
                self._peak = max(self._peak, len(entries))
            counters.process_seconds += time.perf_counter() - mark
            return entries
        except Exception:
            # Keep the term table consistent with the statistics rollback
            # the feed envelope is about to perform.
            self._kernel.unflip(dirty_indices)
            raise

    @hot_loop
    def _finish_period(self, pending: list[_Entry], dirty: frozenset[tuple[str, str]]) -> None:
        # Drop assumptions and unify equal pair sets. Unlike the exact
        # algorithm, the heuristic keeps dominated hypotheses: deleting a
        # strict generalization can remove pairs from the working list's
        # union that the bound-1 run retains, which would falsify the
        # paper's Lemma (⊔D*(b) = d*(1)). The union of kept pair sets is
        # invariant under extension, merging and equality-unification —
        # redundancy deletion is the only operation that could break it.
        by_mask: dict[int, int] = {}
        for mask, _period_mask, weight in pending:
            by_mask[mask] = weight
        self._masks = list(by_mask)
        self._decoded = None
        if self._incremental:
            self._weights = by_mask

    # Boundary code: primes decoded Hypothesis objects, not the mask pool.
    # repro-lint: ignore[RL002]
    def _prime_decoded(self, decoded: list[Hypothesis]) -> None:
        # Decoding happens at the boundary (result(), checkpoints,
        # sharding); seed the Hypothesis.weight memo with the carried
        # Definition 8 weights so the result sort never recomputes them.
        if not self._prime_memo:
            return
        version = self.stats.version
        weights = self._weights
        for hypothesis, mask in zip(decoded, self._masks):
            weight = weights.get(mask)
            if weight is not None:
                hypothesis.prime_weight(version, weight)

    @hot_loop
    def _refresh_weights(self, dirty_indices: Sequence[int]) -> list[_Entry]:
        """Bring carried hypothesis weights up to date with the new period.

        A carried weight is stale only in the terms of dirty indices the
        mask touches, each a constant-time delta. From-scratch evaluation
        remains as the fallback for masks without a carried weight (after
        a checkpoint resume) and as the whole refresh when incremental
        maintenance is disabled.
        """
        counters = self._counters
        kernel = self._kernel
        assert kernel is not None
        flip_delta = kernel.flip_delta
        weights = self._weights if self._incremental else None
        entries: list[_Entry] = []
        for mask in self._masks:
            carried = weights.get(mask) if weights is not None else None
            if carried is None:
                weight = kernel.set_weight(mask)
                counters.weight_refresh_scratch += 1
                counters.weight_scratch_calls += 1
            else:
                weight = carried
                for index in dirty_indices:
                    weight += flip_delta(mask, index)
                counters.weight_refresh_incremental += 1
            entries.append((mask, 0, weight))
        return entries

    @hot_loop
    def _process_message(
        self,
        entries: list[_Entry],
        bits: Sequence[int],
        history: Sequence[Sequence[int]],
    ) -> list[_Entry]:
        """One generalization step: extend every hypothesis, keep <= bound."""
        kernel = self._kernel
        assert kernel is not None
        extension_delta = kernel.extension_delta
        union_delta = kernel.union_delta
        bound = self.bound
        sequence = self._sequence
        pool: dict[_PoolKey, int] = {}
        heap: list[tuple[int, int, _PoolKey]] = []
        pop_lightest = self._pop_lightest

        def insert(mask: int, period_mask: int, weight: int) -> None:
            key = (mask, period_mask)
            if key in pool:
                return
            pool[key] = weight
            heapq.heappush(heap, (weight, next(sequence), key))
            while len(pool) > bound:
                (mask1, pmask1), weight1 = pop_lightest(pool, heap)
                (mask2, pmask2), _weight2 = pop_lightest(pool, heap)
                merged_key = (mask1 | mask2, pmask1 | pmask2)
                merged_weight = weight1 + union_delta(mask1, mask2)
                self._merges += 1
                if merged_key not in pool:
                    pool[merged_key] = merged_weight
                    heapq.heappush(
                        heap, (merged_weight, next(sequence), merged_key)
                    )

        for mask, period_mask, weight in entries:
            feasible = [bit for bit in bits if not period_mask & bit]
            if feasible:
                for bit in feasible:
                    insert(
                        mask | bit,
                        period_mask | bit,
                        weight + extension_delta(mask, bit),
                    )
            else:
                # Merged-lineage corner case: the inherited assignment
                # claims every candidate of this message. Recompute a
                # legal assignment for the whole period so far.
                repaired = self._reassign_period(mask, history)
                self._counters.reassignments += 1
                if repaired is not None:
                    repaired_mask, repaired_period = repaired
                    self._counters.weight_scratch_calls += 1
                    insert(
                        repaired_mask,
                        repaired_period,
                        kernel.set_weight(repaired_mask),
                    )
        if not pool:
            raise EmptyHypothesisSpaceError(self._periods)
        return [(mask, pmask, weight) for (mask, pmask), weight in pool.items()]

    @staticmethod
    @hot_loop
    def _reassign_period(
        mask: int, history: Sequence[Sequence[int]]
    ) -> tuple[int, int] | None:
        """Find a fresh distinct assignment of the period's messages.

        Candidate bits already assumed by the hypothesis are preferred so
        the repair generalizes as little as possible. Returns the repaired
        ``(mask, period_mask)`` or None when no assignment exists (the
        pool's other lineages may still survive). Bit order is index
        order is lexicographic pair order, so the backtracking explores
        assignments exactly as the string reference does.
        """
        options = sorted(
            (
                sorted(bits, key=lambda bit: not mask & bit),
                index,
            )
            for index, bits in enumerate(history)
        )
        # Most-constrained message first.
        options.sort(key=lambda item: len(item[0]))
        used = 0

        def backtrack(position: int) -> bool:
            nonlocal used
            if position == len(options):
                return True
            for bit in options[position][0]:
                if used & bit:
                    continue
                used |= bit
                if backtrack(position + 1):
                    return True
                used &= ~bit
            return False

        if not backtrack(0):
            return None
        # Also generalize by the current message's full candidate set (the
        # last history entry): an unbounded run would have spawned one
        # extension per candidate, and their LUB contributes all of them.
        # Keeping that contribution preserves the paper's Lemma — the LUB
        # of the bounded output stays equal to the bound-1 hypothesis.
        current = 0
        for bit in history[-1]:
            current |= bit
        return mask | used | current, used

    @staticmethod
    @hot_loop
    def _pop_lightest(
        pool: dict[_PoolKey, int],
        heap: list[tuple[int, int, _PoolKey]],
    ) -> tuple[_PoolKey, int]:
        """Pop the least-weight live entry (heap entries are lazily stale)."""
        while True:
            _weight, _seq, key = heapq.heappop(heap)
            weight = pool.pop(key, None)
            if weight is not None:
                return key, weight

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def result(self) -> LearningResult:
        """The current hypothesis list as a result object."""
        ordered = sorted(
            self._hypotheses,
            key=lambda h: (h.weight(self.stats), sorted(h.pairs)),
        )
        return LearningResult(
            functions=[h.to_function(self.stats) for h in ordered],
            hypotheses=ordered,
            stats=self.stats,
            algorithm="heuristic",
            bound=self.bound,
            periods=self._periods,
            messages=self._messages,
            peak_hypotheses=self._peak,
            elapsed_seconds=self._elapsed,
            merge_count=self._merges,
            hot_loop=self._counters.copy(),
        )


def learn_bounded(
    trace: Trace,
    bound: int,
    tolerance: float = 0.0,
    distance: DistanceFunction = lattice.distance,
) -> LearningResult:
    """Run the bounded heuristic over a complete trace."""
    learner = BoundedLearner(trace.tasks, bound, tolerance, distance)
    learner.feed_trace(trace)
    return learner.result()
