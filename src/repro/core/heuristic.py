"""The bounded heuristic learner (paper Section 3.2).

The exact algorithm's hypothesis set grows exponentially; the heuristic
replaces the unordered set with a weight-ordered working list of at most
``bound`` hypotheses. Every time an extension pushes the list one past the
bound, the two hypotheses of least weight are replaced by their least upper
bound (pair-set union). Weight is the paper's Definition 8: the sum over
all ordered task pairs of the square distance of the pair's dependency
value from the lattice bottom, so merging the lightest pair sacrifices the
least specificity.

The heuristic is sound (Theorem 2) but conservative: the result is no
longer guaranteed to be the most-specific set. The paper's Lemma shows the
LUB of its output equals the bound-1 output, and Theorem 4 that on
convergence it coincides with the exact result; both are checked
empirically by ``repro.theory.theorems`` and experiment E4.

Two implementation notes:

* Weights are maintained incrementally, both *within* and *across*
  periods. Within a period, extending a hypothesis by one pair changes at
  most two dependency-function entries (the pair and its mirror), so the
  child's weight is the parent's plus an O(1) delta; a merge adds one
  delta per pair unique to the second parent. Across periods, the only
  thing that can change a carried hypothesis's weight is an
  ``always_implies`` flip, and :meth:`CoExecutionStats.add_period` reports
  exactly the flipped (*dirty*) ordered pairs — so the per-period refresh
  applies one O(1) delta per dirty pair intersecting the hypothesis's
  touched set instead of re-evaluating Definition 8 over all ``t^2``
  entries. This is what makes the paper's ``O(m b^2 + m b t^2)`` bound
  reachable in Python; the :class:`~repro.core.instrumentation.HotLoopCounters`
  carried on the result attest it (zero from-scratch refreshes on periods
  with no dirty pairs).
* Merging must preserve a *valid per-period assignment*. A merged
  hypothesis inherits the first parent's per-period assumptions: they are
  a legal distinct assignment of the period's messages so far, and remain
  legal inside the union pair set. If a later message still finds every
  candidate claimed, the whole period's assignment is *recomputed* by
  backtracking over the period's candidate history, preferring pairs the
  hypothesis already assumed (so the recovery generalizes minimally).
  Both rules keep every kept hypothesis matching every processed instance,
  which is what Theorem 2 requires of the heuristic.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Iterable, Sequence

from repro.core import lattice
from repro.core.base import IncrementalLearner
from repro.core.candidates import candidate_pairs
from repro.core.hypothesis import Hypothesis, Pair
from repro.core.result import LearningResult
from repro.core.stats import CoExecutionStats
from repro.core.weights import DistanceFunction, square_distance
from repro.errors import EmptyHypothesisSpaceError
from repro.trace.period import Period
from repro.trace.trace import Trace

_PoolKey = tuple[frozenset, frozenset]


def _pair_value(
    pairs: frozenset[Pair], a: str, b: str, stats: CoExecutionStats
) -> lattice.DepValue:
    """Dependency value of ``(a, b)`` for a raw pair set (O(1))."""
    forward = (a, b) in pairs
    backward = (b, a) in pairs
    if not forward and not backward:
        return lattice.PARALLEL
    certain = stats.always_implies(a, b)
    value = lattice.PARALLEL
    if forward:
        value = lattice.DETERMINES if certain else lattice.MAY_DETERMINE
    if backward:
        back = lattice.DEPENDS if certain else lattice.MAY_DEPEND
        value = lattice.lub(value, back)
    return value


def _extension_delta(
    pairs: frozenset[Pair],
    pair: Pair,
    stats: CoExecutionStats,
    distance: DistanceFunction = lattice.distance,
) -> int:
    """Weight change from adding *pair* to *pairs*."""
    if pair in pairs:
        return 0
    s, r = pair
    extended = pairs | {pair}
    return (
        distance(_pair_value(extended, s, r, stats))
        - distance(_pair_value(pairs, s, r, stats))
        + distance(_pair_value(extended, r, s, stats))
        - distance(_pair_value(pairs, r, s, stats))
    )


def _union_weight(
    base_pairs: frozenset[Pair],
    base_weight: int,
    other_pairs: frozenset[Pair],
    stats: CoExecutionStats,
    distance: DistanceFunction = lattice.distance,
) -> int:
    """Weight of ``base ∪ other`` given the weight of ``base``."""
    new_pairs = other_pairs - base_pairs
    if not new_pairs:
        return base_weight
    union = base_pairs | new_pairs
    touched: set[Pair] = set()
    for a, b in new_pairs:
        touched.add((a, b))
        touched.add((b, a))
    weight = base_weight
    for a, b in touched:
        weight += distance(_pair_value(union, a, b, stats))
        weight -= distance(_pair_value(base_pairs, a, b, stats))
    return weight


def _set_weight(
    pairs: frozenset[Pair],
    stats: CoExecutionStats,
    distance: DistanceFunction = lattice.distance,
) -> int:
    """Weight of a pair set from scratch (the incremental paths' fallback)."""
    touched: set[Pair] = set()
    for a, b in pairs:
        touched.add((a, b))
        touched.add((b, a))
    return sum(distance(_pair_value(pairs, a, b, stats)) for a, b in touched)


def _flip_delta(
    pairs: frozenset[Pair],
    s: str,
    r: str,
    distance: DistanceFunction = lattice.distance,
) -> int:
    """Weight change when ``always_implies(s, r)`` flips certain → uncertain.

    Only the weight term of the ordered pair ``(s, r)`` is affected, and
    only if the pair set touches it. The flipped term's old and new values
    follow directly from which memberships contribute to it — the
    statistics need not be consulted at all (that is the point: by the
    time the delta is applied the old verdict is gone from the stats).
    """
    forward = (s, r) in pairs
    backward = (r, s) in pairs
    if forward and backward:
        return distance(lattice.MAY_MUTUAL) - distance(lattice.MUTUAL)
    if forward:
        return distance(lattice.MAY_DETERMINE) - distance(lattice.DETERMINES)
    if backward:
        return distance(lattice.MAY_DEPEND) - distance(lattice.DEPENDS)
    return 0


class BoundedLearner(IncrementalLearner):
    """Incremental heuristic learner with a hypothesis bound.

    Parameters
    ----------
    tasks:
        The task universe ``T``.
    bound:
        Maximum number of hypotheses kept (paper's ``b``); must be >= 1.
    tolerance:
        Timing tolerance passed to candidate computation.
    distance:
        Per-value weight contribution (paper Definition 7 by default);
        see :mod:`repro.core.weights` for alternatives and the
        monotonicity requirement.
    incremental_weights:
        When True (the default), carried-over hypothesis weights are
        refreshed per period by dirty-pair deltas instead of from-scratch
        Definition 8 evaluation. The False setting re-derives every
        weight each period — it exists as the differential-testing and
        benchmarking baseline and learns bit-identical results.
    """

    def __init__(
        self,
        tasks: Iterable[str],
        bound: int,
        tolerance: float = 0.0,
        distance: DistanceFunction = lattice.distance,
        incremental_weights: bool = True,
    ):
        if bound < 1:
            raise ValueError(f"bound must be >= 1, got {bound}")
        super().__init__(tasks, tolerance)
        self.bound = bound
        self.distance = distance
        self._incremental = incremental_weights
        # The default distance is what Hypothesis.weight reports, so only
        # then may carried weights be primed into its memo.
        self._prime_memo = incremental_weights and (
            distance is lattice.distance or distance is square_distance
        )
        self._hypotheses: list[Hypothesis] = [Hypothesis.most_specific()]
        #: Carried Definition 8 weight per surviving pair set. The empty
        #: hypothesis weighs 0 under any statistics and distance.
        self._weights: dict[frozenset, int] = {frozenset(): 0}
        self._merges = 0
        self._sequence = itertools.count()

    # ------------------------------------------------------------------
    # Learning (the base class owns the all-or-nothing envelope)
    # ------------------------------------------------------------------

    def _save_run_state(self) -> object:
        return (self._messages, self._peak, self._merges)

    def _restore_run_state(self, state: object) -> None:
        self._messages, self._peak, self._merges = state

    def _absorb(
        self, period: Period, dirty: frozenset, mark: float
    ) -> list[tuple[Hypothesis, int]]:
        counters = self._counters
        entries = self._refresh_weights(dirty)
        now = time.perf_counter()
        counters.refresh_seconds += now - mark
        mark = now
        history: list[Sequence[Pair]] = []
        for message in period.messages:
            pairs = candidate_pairs(period, message, self.tolerance)
            if not pairs:
                raise EmptyHypothesisSpaceError(self._periods)
            counters.observe_candidates(len(pairs))
            history.append(pairs)
            entries = self._process_message(entries, pairs, history)
            self._messages += 1
            self._peak = max(self._peak, len(entries))
        counters.process_seconds += time.perf_counter() - mark
        return entries

    def _finish_period(
        self, pending: list[tuple[Hypothesis, int]], dirty: frozenset
    ) -> None:
        # Drop assumptions and unify equal pair sets. Unlike the exact
        # algorithm, the heuristic keeps dominated hypotheses: deleting a
        # strict generalization can remove pairs from the working list's
        # union that the bound-1 run retains, which would falsify the
        # paper's Lemma (⊔D*(b) = d*(1)). The union of kept pair sets is
        # invariant under extension, merging and equality-unification —
        # redundancy deletion is the only operation that could break it.
        by_pairs: dict[frozenset, Hypothesis] = {}
        weights: dict[frozenset, int] = {}
        for hypothesis, weight in pending:
            by_pairs[hypothesis.pairs] = hypothesis.end_period()
            weights[hypothesis.pairs] = weight
        self._hypotheses = list(by_pairs.values())
        if self._incremental:
            self._weights = weights
        if self._prime_memo:
            version = self.stats.version
            for hypothesis in self._hypotheses:
                hypothesis.prime_weight(version, weights[hypothesis.pairs])

    def _refresh_weights(self, dirty: frozenset[Pair]) -> list[tuple[Hypothesis, int]]:
        """Bring carried hypothesis weights up to date with the new period.

        A carried weight is stale only in the terms of dirty ordered pairs
        the pair set touches, each a constant-time delta. From-scratch
        evaluation remains as the fallback for hypotheses without a
        carried weight (after a checkpoint resume) and as the whole
        refresh when incremental maintenance is disabled.
        """
        counters = self._counters
        entries: list[tuple[Hypothesis, int]] = []
        for hypothesis in self._hypotheses:
            carried = (
                self._weights.get(hypothesis.pairs)
                if self._incremental
                else None
            )
            if carried is None:
                weight = _set_weight(hypothesis.pairs, self.stats, self.distance)
                counters.weight_refresh_scratch += 1
                counters.weight_scratch_calls += 1
            else:
                weight = carried
                if dirty:
                    pairs = hypothesis.pairs
                    for s, r in dirty:
                        weight += _flip_delta(pairs, s, r, self.distance)
                counters.weight_refresh_incremental += 1
            entries.append((hypothesis, weight))
        return entries

    def _process_message(
        self,
        entries: list[tuple[Hypothesis, int]],
        pairs: Sequence[Pair],
        history: Sequence[Sequence[Pair]],
    ) -> list[tuple[Hypothesis, int]]:
        """One generalization step: extend every hypothesis, keep <= bound."""
        pool: dict[_PoolKey, tuple[Hypothesis, int]] = {}
        heap: list[tuple[int, int, _PoolKey]] = []

        def insert(hypothesis: Hypothesis, weight: int) -> None:
            key = (hypothesis.pairs, hypothesis.period_pairs)
            if key in pool:
                return
            pool[key] = (hypothesis, weight)
            heapq.heappush(heap, (weight, next(self._sequence), key))
            while len(pool) > self.bound:
                first = self._pop_lightest(pool, heap)
                second = self._pop_lightest(pool, heap)
                merged = first[0].merge(second[0])
                merged_weight = _union_weight(
                    first[0].pairs,
                    first[1],
                    second[0].pairs,
                    self.stats,
                    self.distance,
                )
                self._merges += 1
                merged_key = (merged.pairs, merged.period_pairs)
                if merged_key not in pool:
                    pool[merged_key] = (merged, merged_weight)
                    heapq.heappush(
                        heap, (merged_weight, next(self._sequence), merged_key)
                    )

        for hypothesis, weight in entries:
            feasible = [p for p in pairs if hypothesis.can_extend(p)]
            if feasible:
                for pair in feasible:
                    child = hypothesis.extend(pair)
                    child_weight = weight + _extension_delta(
                        hypothesis.pairs, pair, self.stats, self.distance
                    )
                    insert(child, child_weight)
            else:
                # Merged-lineage corner case: the inherited assignment
                # claims every candidate of this message. Recompute a
                # legal assignment for the whole period so far.
                repaired = self._reassign_period(hypothesis, history)
                self._counters.reassignments += 1
                if repaired is not None:
                    self._counters.weight_scratch_calls += 1
                    insert(
                        repaired,
                        _set_weight(repaired.pairs, self.stats, self.distance),
                    )
        if not pool:
            raise EmptyHypothesisSpaceError(self._periods)
        return list(pool.values())

    @staticmethod
    def _reassign_period(
        hypothesis: Hypothesis, history: Sequence[Sequence[Pair]]
    ) -> Hypothesis | None:
        """Find a fresh distinct assignment of the period's messages.

        Candidates already assumed by the hypothesis are preferred so the
        repair generalizes as little as possible. Returns None when no
        assignment exists (the pool's other lineages may still survive).
        """
        options = sorted(
            (
                sorted(candidates, key=lambda p: p not in hypothesis.pairs),
                index,
            )
            for index, candidates in enumerate(history)
        )
        # Most-constrained message first.
        options.sort(key=lambda item: len(item[0]))
        assignment: list[Pair] = []
        used: set[Pair] = set()

        def backtrack(position: int) -> bool:
            if position == len(options):
                return True
            for pair in options[position][0]:
                if pair in used:
                    continue
                used.add(pair)
                assignment.append(pair)
                if backtrack(position + 1):
                    return True
                used.discard(pair)
                assignment.pop()
            return False

        if not backtrack(0):
            return None
        chosen = frozenset(assignment)
        # Also generalize by the current message's full candidate set (the
        # last history entry): an unbounded run would have spawned one
        # extension per candidate, and their LUB contributes all of them.
        # Keeping that contribution preserves the paper's Lemma — the LUB
        # of the bounded output stays equal to the bound-1 hypothesis.
        current = frozenset(history[-1])
        return Hypothesis(hypothesis.pairs | chosen | current, chosen)

    @staticmethod
    def _pop_lightest(
        pool: dict[_PoolKey, tuple[Hypothesis, int]],
        heap: list[tuple[int, int, _PoolKey]],
    ) -> tuple[Hypothesis, int]:
        """Pop the least-weight live entry (heap entries are lazily stale)."""
        while True:
            _weight, _seq, key = heapq.heappop(heap)
            entry = pool.pop(key, None)
            if entry is not None:
                return entry

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def result(self) -> LearningResult:
        """The current hypothesis list as a result object."""
        ordered = sorted(
            self._hypotheses,
            key=lambda h: (h.weight(self.stats), sorted(h.pairs)),
        )
        return LearningResult(
            functions=[h.to_function(self.stats) for h in ordered],
            hypotheses=ordered,
            stats=self.stats,
            algorithm="heuristic",
            bound=self.bound,
            periods=self._periods,
            messages=self._messages,
            peak_hypotheses=self._peak,
            elapsed_seconds=self._elapsed,
            merge_count=self._merges,
            hot_loop=self._counters.copy(),
        )


def learn_bounded(
    trace: Trace,
    bound: int,
    tolerance: float = 0.0,
    distance: DistanceFunction = lattice.distance,
) -> LearningResult:
    """Run the bounded heuristic over a complete trace."""
    learner = BoundedLearner(trace.tasks, bound, tolerance, distance)
    learner.feed_trace(trace)
    return learner.result()
