"""Fault-tolerant shard execution: the runtime under sharded learning.

:mod:`repro.core.sharded` proved that shard-parallel bounded learning is
*algorithmically* cheap — Theorem 2 soundness survives the LUB merge, and
the merge itself is a commutative fold (pair-mask union, statistics sum),
so the answer cannot depend on which shard finishes first. What a bare
``ProcessPoolExecutor`` loop lacks is *operational* robustness: one
worker crash, hang or OOM used to abort the whole learn with an opaque
``BrokenProcessPool``. This module supplies the missing runtime.

Every shard moves through a small state machine driven by
:class:`ShardRuntime`::

    queued -> running -> done
                |-> retrying  (failure/timeout, attempts remain)
                |-> split     (attempts exhausted, > 1 period: bisect,
                |              requeue both halves as fresh shards)
                |-> degraded  (attempts and splits exhausted, or the
                               pool is irrecoverably broken: learn the
                               shard in-process, sequentially)

and the policy knobs live in one :class:`ShardPolicy` value threaded
from the CLI (``--shard-timeout``, ``--shard-retries``, ``--degrade``)
through :class:`~repro.pipeline.config.PipelineConfig` down to
:func:`~repro.core.sharded.learn_bounded_sharded`.

Why retrying, splitting and degrading are all *sound*: a shard's outcome
is a pure function of its period range (workers share no state), so a
retry reproduces the lost outcome exactly; a bisected shard's two
outcomes merge to a result that is ``⊒`` the unsplit shard's in the
value lattice (the merge only generalizes — Theorem 2); and the
in-process fallback runs the very same
:func:`~repro.core.sharded.learn_shard` the worker would have. The
merged statistics are per-period sums, hence identical under any
retry/split/completion order — pinned by
``tests/property/test_merge_order_props.py``.

Fault handling, concretely:

* **Timeout** — each in-flight shard carries a wall-clock deadline. A
  hung worker cannot be cancelled through the executor API, so on expiry
  the runtime tears the pool down (terminating worker processes),
  requeues the innocent in-flight shards unchanged, and charges the
  expired shard one attempt.
* **Worker crash** — an abrupt worker death breaks the whole pool and
  every in-flight future raises ``BrokenProcessPool`` without naming a
  culprit. The runtime rebuilds the executor and requeues all in-flight
  shards with one attempt charged to each (the guilty shard is among
  them, so attempts still converge); rebuilds are budgeted by
  ``ShardPolicy.max_pool_rebuilds``, after which the runtime degrades.
* **Repeated failure** — a shard that keeps failing is bisected into two
  smaller period ranges with fresh attempt budgets; a single-period
  shard that still fails is learned in-process (``degrade=sequential``)
  or reported with its period range and attempt count
  (``degrade=fail`` -> :class:`~repro.errors.ShardExecutionError`).

Chaos testing: the ``REPRO_CHAOS`` environment variable injects
deterministic faults in the worker entry point
(:func:`~repro.core.sharded._learn_shard_args`) keyed by shard index and
attempt, so every one of the paths above is exercised by
``tests/test_shardexec.py`` without real OOMs or flaky hardware — see
:func:`parse_chaos` for the grammar.

Backoff between retries is exponential with *deterministic* jitter (a
pure function of shard index and attempt): the runtime must stay
byte-reproducible under ``PYTHONHASHSEED`` variation and must not
consume entropy, per ``tests/test_hashseed_determinism.py``.

The execution substrate itself is pluggable: the runtime mints and
disposes of executors only through a :class:`ShardExecutorFactory`.
The default :class:`ProcessExecutorFactory` supplies local
``ProcessPoolExecutor`` pools; :class:`repro.distributed
.TcpExecutorFactory` supplies a TCP coordinator over remote ``repro
worker`` daemons — and the state machine above drives either without
modification, because every recovery action it takes is expressed as
"tear this executor down, mint a fresh one, requeue".
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, replace
from typing import Callable, Protocol, Sequence

from repro.core.instrumentation import HotLoopCounters
from repro.errors import ShardExecutionError
from repro.trace.columnar import LazyPeriods
from repro.trace.period import Period

#: Environment variable holding the chaos plan (see :func:`parse_chaos`).
CHAOS_ENV = "REPRO_CHAOS"

#: How long an injected hang sleeps. Effectively forever next to any
#: realistic ``--shard-timeout``; the coordinator terminates the worker
#: long before this expires.
HANG_SECONDS = 3600.0

#: Coordinator poll granularity when no deadline or backoff is nearer.
TICK_SECONDS = 0.1


# ---------------------------------------------------------------------------
# Policy


@dataclass(frozen=True)
class ShardPolicy:
    """Fault-tolerance knobs for one sharded learn.

    Attributes
    ----------
    timeout:
        Per-shard wall-clock budget in seconds; ``None`` (the default)
        disables timeouts. On expiry the shard is charged one attempt
        and the pool is rebuilt (a hung worker cannot be cancelled).
    retries:
        Attempts a shard may consume beyond its first run before the
        runtime escalates to splitting.
    backoff:
        Base of the exponential retry backoff, in seconds. Attempt ``k``
        waits ``backoff * 2**k`` (capped at :attr:`backoff_cap`), scaled
        by a deterministic jitter in ``[1.0, 1.25)`` derived from the
        shard index and attempt — no entropy, so runs stay reproducible.
    backoff_cap:
        Upper bound on a single backoff wait.
    max_splits:
        How many times a failing shard's lineage may be bisected before
        the failure is terminal. Splitting halves the period range, so
        depth ``k`` isolates a poison period among ``2**k``.
    max_pool_rebuilds:
        Executor rebuilds allowed after ``BrokenProcessPool`` before the
        pool is considered irrecoverable and the runtime degrades.
    degrade:
        What to do when a shard (or the whole pool) is beyond retrying:
        ``"sequential"`` learns the remaining work in-process —
        completing the learn at reduced parallelism — while ``"fail"``
        raises :class:`~repro.errors.ShardExecutionError` naming the
        shard's period range and attempt count.
    """

    timeout: float | None = None
    retries: int = 2
    backoff: float = 0.05
    backoff_cap: float = 1.0
    max_splits: int = 4
    max_pool_rebuilds: int = 2
    degrade: str = "sequential"

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.max_splits < 0:
            raise ValueError(f"max_splits must be >= 0, got {self.max_splits}")
        if self.max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )
        if self.degrade not in ("sequential", "fail"):
            raise ValueError(
                "degrade must be 'sequential' or 'fail', "
                f"got {self.degrade!r}"
            )

    def backoff_seconds(self, index: int, attempt: int) -> float:
        """Deterministic exponential backoff with jitter for one retry.

        Pure in (index, attempt): no clock, no entropy. The jitter
        spreads simultaneous retries of different shards in time without
        making any run irreproducible.
        """
        base = min(self.backoff_cap, self.backoff * (2 ** max(attempt, 0)))
        jitter = 1.0 + ((index * 73 + attempt * 37) % 101) / 404.0
        return base * jitter


# ---------------------------------------------------------------------------
# Chaos injection (test-only, driven by the REPRO_CHAOS environment variable)


class ChaosFault(RuntimeError):
    """The failure raised by an injected ``fail`` fault."""


@dataclass(frozen=True)
class ChaosSpec:
    """One parsed fault: *kind* hits shard *index* while *attempt* < n."""

    kind: str
    index: int
    param: float

    def applies(self, index: int, attempt: int) -> bool:
        if index != self.index:
            return False
        if self.kind == "slow":
            # A slow worker still succeeds; keep it slow on every
            # attempt (it should never be retried in the first place).
            return True
        return attempt < int(self.param)


#: Wire-level fault kinds handled by :mod:`repro.distributed`, not by
#: :func:`apply_chaos`: they corrupt the *delivery* of a shard result,
#: never its computation, so the in-process compute path ignores them.
NETWORK_KINDS = frozenset({"drop", "duplicate", "reorder", "disconnect"})


def parse_chaos(plan: str) -> tuple[ChaosSpec, ...]:
    """Parse a ``REPRO_CHAOS`` plan into fault specs.

    Grammar: comma-separated ``kind@shard[:param]`` entries, e.g.
    ``"crash@2,hang@0:2,slow@3:0.25,fail@1:2"``.

    Compute faults (injected by :func:`apply_chaos` in the worker entry
    point):

    * ``crash@I[:N]`` — the worker process exits abruptly
      (``os._exit``) while the shard's attempt is below ``N``
      (default 1). Breaks the whole pool, like a real OOM kill.
    * ``hang@I[:N]`` — the worker sleeps ~forever while the attempt is
      below ``N`` (default 1); only a shard timeout recovers this.
    * ``fail@I[:N]`` — the worker raises :class:`ChaosFault` while the
      attempt is below ``N`` (default 1). The pool survives.
    * ``slow@I[:S]`` — the worker sleeps ``S`` seconds (default 0.2)
      and then succeeds, on every attempt.

    Network faults (injected by the distributed wire layer on shard
    *result delivery* — see :mod:`repro.distributed.chaos`; ignored by
    :func:`apply_chaos`):

    * ``drop@I[:N]`` — the result frame is never sent while the
      delivery attempt is below ``N`` (work stealing recovers it).
    * ``duplicate@I[:N]`` — the result frame is sent twice (the
      coordinator deduplicates).
    * ``reorder@I[:N]`` — the result frame is held back until a later
      frame has been sent (the LUB merge is order-free).
    * ``disconnect@I[:N]`` — the worker closes its connection instead
      of sending the result (the coordinator requeues, the worker
      reconnects).
    """
    specs: list[ChaosSpec] = []
    defaults = {
        "crash": 1.0, "hang": 1.0, "fail": 1.0, "slow": 0.2,
        "drop": 1.0, "duplicate": 1.0, "reorder": 1.0, "disconnect": 1.0,
    }
    for entry in plan.split(","):
        entry = entry.strip()
        if not entry:
            continue
        try:
            kind, _, target = entry.partition("@")
            if kind not in defaults:
                raise ValueError(f"unknown fault kind {kind!r}")
            index_text, _, param_text = target.partition(":")
            index = int(index_text)
            param = float(param_text) if param_text else defaults[kind]
        except ValueError as error:
            raise ValueError(
                f"bad {CHAOS_ENV} entry {entry!r}: {error}"
            ) from error
        specs.append(ChaosSpec(kind, index, param))
    return tuple(specs)


def apply_chaos(index: int, attempt: int) -> None:
    """Inject the configured fault for (*index*, *attempt*), if any.

    Called by the worker entry point
    (:func:`~repro.core.sharded._learn_shard_args`) inside the pool
    process, and nowhere else — the in-process degraded path bypasses
    injection by construction, which is what lets the chaos suite prove
    that degraded learns complete. Network fault kinds
    (:data:`NETWORK_KINDS`) are delivery faults, not compute faults, so
    they fall through here and are injected by the distributed wire
    layer instead.
    """
    plan = os.environ.get(CHAOS_ENV)
    if not plan:
        return
    for spec in parse_chaos(plan):
        if not spec.applies(index, attempt):
            continue
        if spec.kind == "crash":
            os._exit(3)
        elif spec.kind == "hang":
            time.sleep(HANG_SECONDS)
        elif spec.kind == "slow":
            time.sleep(spec.param)
        elif spec.kind == "fail":
            raise ChaosFault(
                f"injected failure (shard {index}, attempt {attempt})"
            )


# ---------------------------------------------------------------------------
# Executor seam


class ShardExecutorFactory(Protocol):
    """The pluggable executor seam under :class:`ShardRuntime`.

    The runtime's state machine (timeouts, retries, bisection, pool
    rebuild, degradation) is executor-agnostic: everything it needs from
    the execution substrate is the ability to mint a fresh
    ``concurrent.futures``-style executor and to dispose of one that may
    contain hung or dead workers. A factory provides exactly that pair,
    so the same runtime drives local process pools
    (:class:`ProcessExecutorFactory`) and remote TCP worker fleets
    (:class:`repro.distributed.TcpExecutorFactory`) unchanged.

    Contract:

    * :meth:`new_executor` returns a ready executor. A rebuild after
      breakage calls it again; the factory may return a fresh object or
      reset and return a long-lived one. ``OSError`` here is treated
      like pool construction failure (degrade or raise per policy).
    * :meth:`teardown` disposes of an executor that may hold hung or
      dead workers; it must return promptly and must not require the
      workers' cooperation.
    * An optional ``counters`` attribute
      (:class:`~repro.core.instrumentation.HotLoopCounters`) is merged
      into the runtime's counters after the run — this is how the TCP
      coordinator's wire/connection tallies reach ``--profile-json``.
    """

    def new_executor(self) -> Executor:
        """Mint (or reset and return) a ready executor."""
        ...  # pragma: no cover - protocol

    def teardown(self, executor: Executor) -> None:
        """Dispose of *executor*, tolerating hung or dead workers."""
        ...  # pragma: no cover - protocol


class ProcessExecutorFactory:
    """The default seam implementation: local OS process pools."""

    def __init__(self, workers: int) -> None:
        self.workers = workers

    def new_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.workers)

    def teardown(self, executor: Executor) -> None:
        """Dispose of a pool that may contain hung or dead workers.

        A plain ``shutdown(wait=True)`` would block forever behind a
        hung worker, and ``shutdown(wait=False)`` leaks the executor's
        management thread into interpreter exit — so the worker
        processes are terminated explicitly first (best effort; the
        mapping is executor-internal, and sleeping workers die on
        SIGTERM), after which the blocking shutdown reaps the dead pool
        promptly and completely.
        """
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except (OSError, ValueError):  # already dead / closed
                pass
        executor.shutdown(wait=True, cancel_futures=True)


# ---------------------------------------------------------------------------
# Jobs


@dataclass
class ShardJob:
    """One schedulable unit: a contiguous period range plus its history.

    ``index`` is stable across retries (it keys chaos injection and
    backoff jitter); split children receive fresh, never-reused indices
    so injected faults do not follow a lineage across a bisection.

    ``periods`` is a materialized tuple for in-memory traces, but lazy
    :class:`~repro.trace.columnar.LazyPeriods` views (the store's
    zero-copy ranges) are kept intact: slicing them for a bisection is
    O(1), and pickling one for a worker ships a ``(store_path,
    period_range)`` handle instead of the events.
    """

    index: int
    periods: Sequence[Period]
    attempt: int = 0
    splits: int = 0
    not_before: float = 0.0

    @property
    def period_range(self) -> str:
        """Human-readable global period range, for error messages."""
        if not self.periods:
            return "empty"
        return f"{self.periods[0].index}..{self.periods[-1].index}"

    def describe(self) -> str:
        return (
            f"shard {self.index} (periods {self.period_range}, "
            f"attempt {self.attempt + 1})"
        )


# ---------------------------------------------------------------------------
# Runtime


class ShardRuntime:
    """Drive shard jobs through a process pool, surviving faults.

    Parameters
    ----------
    tasks, bound, tolerance:
        The learning arguments shipped to every worker.
    workers:
        Pool size (and in-flight cap).
    policy:
        The :class:`ShardPolicy` in force.
    worker:
        Module-level callable executed in pool processes. Receives one
        argument tuple ``(tasks, periods, bound, tolerance, index,
        attempt)`` and returns a shard outcome. Must be picklable
        (lint rule RL004 guards the submission sites below).
    fallback:
        In-process callable for degraded learning. Receives
        ``(tasks, periods, bound, tolerance)`` and returns a shard
        outcome; never subject to chaos injection.
    executor_factory:
        The :class:`ShardExecutorFactory` supplying executors; ``None``
        (the default) uses :class:`ProcessExecutorFactory` — local OS
        process pools, the classic behavior. The distributed runtime
        passes a :class:`repro.distributed.TcpExecutorFactory` here and
        the state machine drives remote workers unchanged.

    The instance's :attr:`counters` accumulate the failure/retry/split/
    rebuild/degradation tallies that
    :func:`~repro.core.sharded.learn_bounded_sharded` folds into the
    merged result's :class:`~repro.core.instrumentation.HotLoopCounters`.
    """

    def __init__(
        self,
        tasks: Sequence[str],
        bound: int,
        tolerance: float,
        workers: int,
        policy: ShardPolicy,
        worker: Callable,
        fallback: Callable,
        executor_factory: ShardExecutorFactory | None = None,
    ) -> None:
        self.tasks = tuple(tasks)
        self.bound = bound
        self.tolerance = tolerance
        self.workers = workers
        self.policy = policy
        self.worker = worker
        self.fallback = fallback
        self.factory: ShardExecutorFactory = (
            executor_factory
            if executor_factory is not None
            else ProcessExecutorFactory(workers)
        )
        self.counters = HotLoopCounters()
        self._next_index = 0

    # -- public entry ----------------------------------------------------

    def run(self, shards: Sequence[Sequence[Period]]) -> list:
        """Learn every shard, tolerating faults; outcomes in any order."""
        queue: deque[ShardJob] = deque(
            ShardJob(
                index=i,
                periods=(
                    shard if isinstance(shard, LazyPeriods) else tuple(shard)
                ),
            )
            for i, shard in enumerate(shards)
        )
        self._next_index = len(queue)
        outcomes: list = []
        inflight: dict[Future, tuple[ShardJob, float | None]] = {}
        pool: Executor | None = None
        broken_rebuilds = 0
        degraded = False
        try:
            while queue or inflight:
                if degraded:
                    outcomes.append(self._run_fallback(queue.popleft()))
                    continue
                if pool is None:
                    pool = self._new_pool()
                    if pool is None:
                        degraded = True
                        continue
                broken = not self._submit_ready(pool, queue, inflight)
                if not broken and not inflight:
                    # Everything runnable is backing off; sleep it out.
                    self._sleep_until_ready(queue)
                    continue
                if not broken:
                    broken = self._collect(
                        inflight, queue, outcomes,
                        self._wait_tick(inflight, queue),
                    )
                if not broken:
                    if self._expire_deadlines(pool, inflight, queue, outcomes):
                        pool = None  # torn down to kill the hung worker
                    continue
                # The pool is broken: the guilty shard cannot be told
                # apart from the bystanders, so every in-flight shard is
                # charged one attempt and requeued, and the executor is
                # rebuilt within the policy's budget.
                self._requeue_inflight(inflight, queue, charge_attempt=True)
                self._teardown(pool)
                pool = None
                broken_rebuilds += 1
                if broken_rebuilds > self.policy.max_pool_rebuilds:
                    degraded = self._degrade_or_raise(queue)
                else:
                    self.counters.pool_rebuilds += 1
        finally:
            if pool is not None:
                self._teardown(pool)
            extra = getattr(self.factory, "counters", None)
            if extra is not None:
                self.counters.merge(extra)
        return outcomes

    # -- scheduling ------------------------------------------------------

    def _args(self, job: ShardJob) -> tuple:
        return (
            self.tasks,
            job.periods,
            self.bound,
            self.tolerance,
            job.index,
            job.attempt,
        )

    def _submit_ready(
        self,
        pool: Executor,
        queue: deque[ShardJob],
        inflight: dict[Future, tuple[ShardJob, float | None]],
    ) -> bool:
        """Submit backoff-expired jobs up to the in-flight cap.

        Returns ``False`` when the pool turned out to be broken (the
        unsubmitted job is requeued).
        """
        now = time.monotonic()
        rotations = 0
        while queue and len(inflight) < self.workers:
            if queue[0].not_before > now:
                queue.rotate(-1)
                rotations += 1
                if rotations > len(queue):
                    break  # every queued job is still backing off
                continue
            job = queue.popleft()
            try:
                future = pool.submit(self.worker, self._args(job))
            except (BrokenExecutor, RuntimeError):
                queue.appendleft(job)
                return False
            deadline = (
                now + self.policy.timeout
                if self.policy.timeout is not None
                else None
            )
            inflight[future] = (job, deadline)
        return True

    def _wait_tick(
        self,
        inflight: dict[Future, tuple[ShardJob, float | None]],
        queue: deque[ShardJob],
    ) -> float | None:
        """How long the coordinator may block waiting for completions."""
        now = time.monotonic()
        horizons = [
            deadline - now for _, deadline in inflight.values()
            if deadline is not None
        ]
        horizons.extend(
            job.not_before - now for job in queue if job.not_before > now
        )
        if not horizons:
            return None if inflight else TICK_SECONDS
        return max(0.0, min(min(horizons), TICK_SECONDS))

    def _sleep_until_ready(self, queue: deque[ShardJob]) -> None:
        delay = min(job.not_before for job in queue) - time.monotonic()
        if delay > 0:
            time.sleep(min(delay, TICK_SECONDS))

    # -- completion and failure ------------------------------------------

    def _collect(
        self,
        inflight: dict[Future, tuple[ShardJob, float | None]],
        queue: deque[ShardJob],
        outcomes: list,
        tick: float | None,
    ) -> bool:
        """Harvest finished futures; returns True if the pool broke."""
        if not inflight:
            return False
        done, _ = wait(
            set(inflight), timeout=tick, return_when=FIRST_COMPLETED
        )
        broken = False
        for future in done:
            job, _ = inflight.pop(future)
            try:
                outcomes.append(future.result())
            except BrokenExecutor:
                broken = True
                queue.append(self._advanced(job))
                self.counters.pool_requeues += 1
            except Exception as error:
                self.counters.shard_failures += 1
                self._handle_failure(job, error, queue, outcomes)
        return broken

    def _expire_deadlines(
        self,
        pool: Executor,
        inflight: dict[Future, tuple[ShardJob, float | None]],
        queue: deque[ShardJob],
        outcomes: list,
    ) -> bool:
        """Time out overdue shards; tear the pool down if any expired.

        A running future cannot be cancelled through the executor API, so
        recovery from a hang means terminating the worker processes. The
        innocent in-flight shards are requeued unchanged — no attempt
        charged, their re-run is a pure replay. Returns True when the
        pool was torn down (the caller must rebuild it).
        """
        now = time.monotonic()
        expired = [
            (future, job)
            for future, (job, deadline) in inflight.items()
            if deadline is not None and now >= deadline
        ]
        if not expired:
            return False
        for future, job in expired:
            del inflight[future]
            self.counters.shard_timeouts += 1
            error = TimeoutError(
                f"shard exceeded --shard-timeout="
                f"{self.policy.timeout:g}s"
            )
            self._handle_failure(
                job, error, queue, outcomes, timed_out=True
            )
        self._requeue_inflight(inflight, queue, charge_attempt=False)
        self._teardown(pool)
        self.counters.pool_rebuilds += 1
        return True

    def _handle_failure(
        self,
        job: ShardJob,
        error: BaseException,
        queue: deque[ShardJob],
        outcomes: list,
        timed_out: bool = False,
    ) -> None:
        """retrying -> split -> degraded/fail escalation for one shard."""
        if job.attempt < self.policy.retries:
            retry = self._advanced(job)
            retry.not_before = time.monotonic() + self.policy.backoff_seconds(
                job.index, job.attempt
            )
            self.counters.shard_retries += 1
            queue.append(retry)
            return
        if len(job.periods) > 1 and job.splits < self.policy.max_splits:
            middle = len(job.periods) // 2
            self.counters.shard_splits += 1
            for half in (job.periods[:middle], job.periods[middle:]):
                queue.append(
                    ShardJob(
                        index=self._fresh_index(),
                        periods=half,
                        splits=job.splits + 1,
                    )
                )
            return
        if self.policy.degrade == "sequential":
            # Terminal failure of this one shard: learn it in-process.
            # (For a timed-out shard, the hung worker is dealt with by
            # the caller's pool teardown; the fallback itself cannot
            # hang — chaos only fires in pool workers.)
            outcomes.append(self._run_fallback(job))
            return
        raise ShardExecutionError(
            f"{job.describe()} failed after {job.attempt + 1} attempt(s) "
            f"with no split budget left: {error}"
        ) from error

    def _advanced(self, job: ShardJob) -> ShardJob:
        return replace(job, attempt=job.attempt + 1, not_before=0.0)

    def _fresh_index(self) -> int:
        index = self._next_index
        self._next_index += 1
        return index

    def _requeue_inflight(
        self,
        inflight: dict[Future, tuple[ShardJob, float | None]],
        queue: deque[ShardJob],
        charge_attempt: bool,
    ) -> None:
        for job, _ in inflight.values():
            queue.append(self._advanced(job) if charge_attempt else job)
            self.counters.pool_requeues += 1
        inflight.clear()

    # -- degraded path ---------------------------------------------------

    def _run_fallback(self, job: ShardJob):
        """Learn one shard in-process (the ``degraded`` state)."""
        self.counters.degraded_shards += 1
        try:
            return self.fallback(
                (self.tasks, job.periods, self.bound, self.tolerance)
            )
        except Exception as error:
            raise ShardExecutionError(
                f"{job.describe()} failed even in the in-process "
                f"sequential fallback: {error}"
            ) from error

    def _degrade_or_raise(self, queue: deque[ShardJob]) -> bool:
        if self.policy.degrade == "sequential":
            return True
        survivor = queue[0] if queue else None
        detail = f"; next pending was {survivor.describe()}" if survivor else ""
        raise ShardExecutionError(
            "process pool broke more than "
            f"{self.policy.max_pool_rebuilds} time(s) and degrade='fail'"
            f"{detail}"
        )

    # -- pool lifecycle --------------------------------------------------

    def _new_pool(self) -> Executor | None:
        """Mint an executor through the seam; None means degrade now."""
        try:
            return self.factory.new_executor()
        except OSError:
            if self.policy.degrade == "fail":
                raise
            return None

    def _teardown(self, pool: Executor) -> None:
        self.factory.teardown(pool)


__all__ = [
    "CHAOS_ENV",
    "NETWORK_KINDS",
    "ChaosFault",
    "ChaosSpec",
    "ProcessExecutorFactory",
    "ShardExecutorFactory",
    "ShardJob",
    "ShardPolicy",
    "ShardRuntime",
    "apply_chaos",
    "parse_chaos",
]
