"""The matching function ``M : H × I → bool`` (paper Definition 3).

A dependency function (hypothesis) matches a period instance when

1. every *certain* relation is observed: if ``d(a, b)`` carries a certain
   arrow (``→``, ``←`` or ``↔``) and ``a`` executed in the period, then
   ``b`` executed as well; and
2. the period's messages are *explainable*: each message occurrence can be
   assigned a temporally possible sender-receiver pair allowed by the
   hypothesis, with at most one message per ordered pair in the period.

Condition 2 is a system of distinctness constraints, solved here by
backtracking with most-constrained-message-first ordering; periods are
small (tens of messages), so this is fast in practice even though the
general problem is NP-hard (paper Theorem 1).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.candidates import candidate_pairs
from repro.core.depfunc import DependencyFunction
from repro.core.hypothesis import Pair
from repro.core.interning import task_table
from repro.trace.period import Period
from repro.trace.trace import Trace


def certain_relations_hold(function: DependencyFunction, period: Period) -> bool:
    """Check condition 1: certain arrows imply co-execution."""
    for a, b, value in function.nonparallel_pairs():
        if value.is_certain and period.executed(a) and not period.executed(b):
            return False
    return True


def allowed_pairs(
    function: DependencyFunction, pairs: Iterable[Pair]
) -> tuple[Pair, ...]:
    """Filter candidate pairs down to those the hypothesis permits.

    A pair ``(s, r)`` is permitted when ``d(s, r)`` includes a (possible)
    forward arrow — equivalently ``d(r, s)`` a backward one under a
    well-formed function.
    """
    return tuple(
        (s, r) for s, r in pairs if function.value(s, r).has_forward
    )


def find_explanation(
    function: DependencyFunction,
    period: Period,
    tolerance: float = 0.0,
) -> Optional[dict[str, Pair]]:
    """An assignment of message labels to allowed distinct pairs, or None.

    Returns a map from message label to the chosen ``(sender, receiver)``
    pair if the period's messages can all be explained under *function*;
    otherwise ``None``.
    """
    # Distinctness bookkeeping runs on interned pair bits (one shared
    # table per task universe): membership and claim/release are single
    # mask operations instead of set-of-tuple mutations.
    table = task_table(function.tasks)
    messages = period.messages
    options: list[tuple[str, tuple[Pair, ...], tuple[int, ...]]] = []
    for message in messages:
        permitted = allowed_pairs(
            function, candidate_pairs(period, message, tolerance)
        )
        if not permitted:
            return None
        options.append((message.label, permitted, table.bits_of(permitted)))
    # Most-constrained first keeps the backtracking shallow.
    options.sort(key=lambda item: len(item[1]))
    assignment: dict[str, Pair] = {}
    used = 0

    def backtrack(position: int) -> bool:
        nonlocal used
        if position == len(options):
            return True
        label, permitted, bits = options[position]
        for pair, bit in zip(permitted, bits):
            if used & bit:
                continue
            used |= bit
            assignment[label] = pair
            if backtrack(position + 1):
                return True
            used &= ~bit
            del assignment[label]
        return False

    if backtrack(0):
        return dict(assignment)
    return None


def matches_period(
    function: DependencyFunction,
    period: Period,
    tolerance: float = 0.0,
) -> bool:
    """``M(h, i)`` for one instance (period)."""
    return certain_relations_hold(function, period) and (
        find_explanation(function, period, tolerance) is not None
    )


def matches_trace(
    function: DependencyFunction,
    trace: Trace | Sequence[Period],
    tolerance: float = 0.0,
) -> bool:
    """``M(h, I)``: the hypothesis matches every instance of the trace."""
    periods = trace.periods if isinstance(trace, Trace) else trace
    return all(matches_period(function, p, tolerance) for p in periods)
