"""Interned pair indices and the bitmask kernel of the hot loops.

The version-space learners spend essentially all of their time combining,
deduplicating and weighing *pair sets* — sets of ordered ``(sender,
receiver)`` task pairs. The seed implementation represented them as
``frozenset[tuple[str, str]]``, so every extension, LUB merge and pool
lookup allocated a fresh frozenset and re-hashed string tuples. This
module replaces that representation inside ``repro.core`` with dense
integers:

:class:`TaskTable`
    Interns the task universe into dense integer ids (assigned in sorted
    name order) and maps each ordered pair ``(s, r)`` to the index
    ``id(s) * t + id(r)``. Because ids follow sorted name order, index
    order coincides with the lexicographic ``(sender, receiver)`` order
    the rest of the code base sorts pairs by — which is what lets the
    mask kernel reproduce the string kernel's iteration orders (and
    therefore its output) bit for bit.

:class:`PairSet`
    A pair set as a single Python ``int`` bitmask over pair indices,
    wrapped with set operations for the boundary layers and the tests.
    The hot loops use the raw ``int`` directly: extension is ``mask |
    bit``, the heuristic's LUB merge is ``|``, pool dedup keys are
    ``(mask, period_mask)`` int tuples, and strict-superset elimination
    is ``a & b == a``.

:class:`WeightKernel`
    Definition 8 weights over masks via a precomputed per-pair-index
    distance-term table. The table is refreshed only on
    ``always_implies`` flips (the dirty pairs reported by
    :meth:`~repro.core.stats.CoExecutionStats.add_period`), composing
    with the incremental per-period weight refresh: extension and union
    weight deltas become a handful of list lookups.

Everything above ``repro.core`` keeps speaking ``(str, str)`` pairs:
checkpoints, :class:`~repro.core.result.LearningResult` and the shard
coordinator translate at the boundary via :meth:`TaskTable.pairs_of` /
:meth:`TaskTable.mask_of`, so the kernel is invisible to callers.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Iterator, Sequence

from repro.core import lattice
from repro.core.instrumentation import hot_loop
from repro.core.stats import CoExecutionStats
from repro.core.weights import DistanceFunction

Pair = tuple[str, str]


class TaskTable:
    """Dense integer ids for a task universe and its ordered pairs.

    Ids are assigned in sorted task-name order, so for two pairs ``p``
    and ``q``, ``index(p) < index(q)`` iff ``p < q`` lexicographically.
    The table is a pure function of the task set: two tables built from
    the same tasks (in any order) produce interchangeable masks, which is
    what lets shard workers exchange masks instead of string sets.
    """

    __slots__ = (
        "tasks",
        "ordered",
        "task_count",
        "_id",
        "_pair_by_index",
        "_bit_by_pair",
        "mirror_index",
    )

    def __init__(self, tasks: Iterable[str]) -> None:
        self.tasks = tuple(tasks)
        self.ordered: tuple[str, ...] = tuple(sorted(set(self.tasks)))
        t = len(self.ordered)
        self.task_count = t
        self._id = {name: i for i, name in enumerate(self.ordered)}
        self._pair_by_index: list[Pair] = [
            (s, r) for s in self.ordered for r in self.ordered
        ]
        self._bit_by_pair = {
            pair: 1 << index
            for index, pair in enumerate(self._pair_by_index)
            if pair[0] != pair[1]
        }
        #: ``mirror_index[s*t + r] == r*t + s`` (identity on the diagonal).
        self.mirror_index: list[int] = [
            (index % t) * t + index // t for index in range(t * t)
        ]

    def task_id(self, task: str) -> int:
        """The dense id of *task* (raises KeyError for unknown tasks)."""
        return self._id[task]

    def pair_index(self, pair: Pair) -> int:
        """The dense index of the ordered pair ``(s, r)``."""
        s, r = pair
        return self._id[s] * self.task_count + self._id[r]

    def pair_at(self, index: int) -> Pair:
        """The ordered pair at a dense index."""
        return self._pair_by_index[index]

    def pair_bit(self, pair: Pair) -> int:
        """``1 << pair_index(pair)``; rejects diagonal (s == r) pairs."""
        return self._bit_by_pair[pair]

    @hot_loop
    def bits_of(self, pairs: Sequence[Pair]) -> tuple[int, ...]:
        """The pair bits of *pairs*, preserving order (hot-loop interning)."""
        bit = self._bit_by_pair
        return tuple(bit[pair] for pair in pairs)

    @hot_loop
    def indices_of(self, pairs: Iterable[Pair]) -> tuple[int, ...]:
        """Dense indices of *pairs* (order preserved)."""
        t = self.task_count
        ids = self._id
        return tuple(ids[s] * t + ids[r] for s, r in pairs)

    @hot_loop
    def mask_of(self, pairs: Iterable[Pair]) -> int:
        """Intern a pair collection as a bitmask."""
        bit = self._bit_by_pair
        mask = 0
        for pair in pairs:
            mask |= bit[pair]
        return mask

    @hot_loop
    def iter_indices(self, mask: int) -> Iterator[int]:
        """Indices of the set bits of *mask*, ascending."""
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def pairs_of(self, mask: int) -> frozenset[Pair]:
        """Decode a bitmask back to the string pair set."""
        pair_at = self._pair_by_index
        return frozenset(pair_at[index] for index in self.iter_indices(mask))

    def sorted_pairs_of(self, mask: int) -> tuple[Pair, ...]:
        """Decode a bitmask to pairs in lexicographic (= index) order."""
        pair_at = self._pair_by_index
        return tuple(pair_at[index] for index in self.iter_indices(mask))

    @hot_loop
    def mirror_mask(self, mask: int) -> int:
        """The mask with every pair ``(s, r)`` replaced by ``(r, s)``."""
        mirror = self.mirror_index
        out = 0
        while mask:
            low = mask & -mask
            out |= 1 << mirror[low.bit_length() - 1]
            mask ^= low
        return out

    def __repr__(self) -> str:
        return f"TaskTable(tasks={self.task_count})"


@lru_cache(maxsize=64)
def task_table(tasks: tuple[str, ...]) -> TaskTable:
    """A shared :class:`TaskTable` per task universe.

    Building a table is ``O(t^2)``; matching and analysis code paths
    create one per call site, so identical universes share one instance.
    """
    return TaskTable(tasks)


class PairSet:
    """A pair set as one ``int`` bitmask, with set semantics on top.

    The boundary-layer wrapper around the kernel's raw masks: equality,
    ordering and union behave exactly like the ``frozenset[Pair]`` they
    replace (asserted by the property tests). Hot loops skip the wrapper
    and operate on ``.mask`` directly.
    """

    __slots__ = ("table", "mask")

    def __init__(self, table: TaskTable, mask: int = 0) -> None:
        self.table = table
        self.mask = mask

    @classmethod
    def from_pairs(cls, table: TaskTable, pairs: Iterable[Pair]) -> "PairSet":
        return cls(table, table.mask_of(pairs))

    def to_pairs(self) -> frozenset[Pair]:
        return self.table.pairs_of(self.mask)

    def __or__(self, other: "PairSet") -> "PairSet":
        return PairSet(self.table, self.mask | other.mask)

    def __and__(self, other: "PairSet") -> "PairSet":
        return PairSet(self.table, self.mask & other.mask)

    def __le__(self, other: "PairSet") -> bool:
        return self.mask & other.mask == self.mask

    def __lt__(self, other: "PairSet") -> bool:
        return self.mask != other.mask and self.mask & other.mask == self.mask

    def __contains__(self, pair: Pair) -> bool:
        try:
            return bool(self.mask & self.table.pair_bit(pair))
        except KeyError:
            return False

    def __iter__(self) -> Iterator[Pair]:
        return iter(self.table.sorted_pairs_of(self.mask))

    def __len__(self) -> int:
        return self.mask.bit_count()

    def __bool__(self) -> bool:
        return bool(self.mask)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PairSet):
            return self.mask == other.mask
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.mask)

    def __repr__(self) -> str:
        return f"PairSet({sorted(self.to_pairs())})"


class WeightKernel:
    """Definition 8 weights over masks, via a per-pair-index term table.

    For the ordered term index ``i`` standing for tasks ``(a, b)``, the
    derived dependency value depends on three things only: whether the
    forward pair bit ``i`` is set, whether the backward (mirror) bit is
    set, and the ``always_implies(a, b)`` certainty flag. The kernel
    precomputes the distance of each outcome per index::

        term_f[i]  = distance(->  if certain[i] else ->?)
        term_b[i]  = distance(<-  if certain[i] else <-?)
        term_fb[i] = distance(<-> if certain[i] else <->?)

    so a from-scratch Definition 8 evaluation is one list lookup per
    touched term, and the extension / union deltas of the hot loop touch
    two or a handful of indices. Certainty flips (the dirty pairs of
    :meth:`~repro.core.stats.CoExecutionStats.add_period`) refresh only
    the flipped indices via :meth:`flip`; a failed (rolled-back) period
    undoes them with :meth:`unflip`. The per-hypothesis weight delta of
    a flip is membership-dependent but value-constant — precomputed once
    as ``_flip_f`` / ``_flip_b`` / ``_flip_fb``.
    """

    __slots__ = (
        "table",
        "_mirror",
        "_term_f",
        "_term_b",
        "_term_fb",
        "_certain",
        "_d_certain",
        "_d_maybe",
        "_flip_f",
        "_flip_b",
        "_flip_fb",
    )

    def __init__(
        self,
        table: TaskTable,
        stats: CoExecutionStats,
        distance: DistanceFunction = lattice.distance,
    ) -> None:
        self.table = table
        self._mirror = table.mirror_index
        certain = stats.certain_flags(table)
        d_det = distance(lattice.DETERMINES)
        d_may_det = distance(lattice.MAY_DETERMINE)
        d_dep = distance(lattice.DEPENDS)
        d_may_dep = distance(lattice.MAY_DEPEND)
        d_mut = distance(lattice.MUTUAL)
        d_may_mut = distance(lattice.MAY_MUTUAL)
        self._certain = certain
        self._d_certain = (d_det, d_dep, d_mut)
        self._d_maybe = (d_may_det, d_may_dep, d_may_mut)
        self._term_f = [d_det if c else d_may_det for c in certain]
        self._term_b = [d_dep if c else d_may_dep for c in certain]
        self._term_fb = [d_mut if c else d_may_mut for c in certain]
        self._flip_f = d_may_det - d_det
        self._flip_b = d_may_dep - d_dep
        self._flip_fb = d_may_mut - d_mut

    # ------------------------------------------------------------------
    # Certainty maintenance (dirty-pair refresh)
    # ------------------------------------------------------------------

    @hot_loop
    def flip(self, indices: Iterable[int]) -> None:
        """Mark the term *indices* uncertain (an ``always_implies`` flip)."""
        d_may_det, d_may_dep, d_may_mut = self._d_maybe
        certain = self._certain
        for index in indices:
            certain[index] = False
            self._term_f[index] = d_may_det
            self._term_b[index] = d_may_dep
            self._term_fb[index] = d_may_mut

    @hot_loop
    def unflip(self, indices: Iterable[int]) -> None:
        """Undo :meth:`flip` after a rolled-back period."""
        d_det, d_dep, d_mut = self._d_certain
        certain = self._certain
        for index in indices:
            certain[index] = True
            self._term_f[index] = d_det
            self._term_b[index] = d_dep
            self._term_fb[index] = d_mut

    # ------------------------------------------------------------------
    # Weight evaluation
    # ------------------------------------------------------------------

    @hot_loop
    def term_weight(self, mask: int, index: int) -> int:
        """Distance contribution of one ordered term under *mask*."""
        forward = mask >> index & 1
        backward = mask >> self._mirror[index] & 1
        if forward:
            return self._term_fb[index] if backward else self._term_f[index]
        return self._term_b[index] if backward else 0

    @hot_loop
    def set_weight(self, mask: int) -> int:
        """Definition 8 weight of *mask* from scratch (boundary fallback)."""
        touched = mask | self.table.mirror_mask(mask)
        weight = 0
        while touched:
            low = touched & -touched
            weight += self.term_weight(mask, low.bit_length() - 1)
            touched ^= low
        return weight

    @hot_loop
    def extension_delta(self, mask: int, bit: int) -> int:
        """Weight change from ``mask`` to ``mask | bit`` (one new pair)."""
        if mask & bit:
            return 0
        index = bit.bit_length() - 1
        mirror = self._mirror[index]
        if mask >> mirror & 1:
            # The backward pair is already assumed: both ordered terms
            # step from a single arrow to the mutual value.
            return (
                self._term_fb[index]
                - self._term_b[index]
                + self._term_fb[mirror]
                - self._term_f[mirror]
            )
        return self._term_f[index] + self._term_b[mirror]

    @hot_loop
    def union_delta(self, base: int, other: int) -> int:
        """Weight change from ``base`` to ``base | other`` (LUB merge)."""
        new = other & ~base
        if not new:
            return 0
        union = base | new
        touched = new | self.table.mirror_mask(new)
        delta = 0
        while touched:
            low = touched & -touched
            index = low.bit_length() - 1
            delta += self.term_weight(union, index)
            delta -= self.term_weight(base, index)
            touched ^= low
        return delta

    @hot_loop
    def flip_delta(self, mask: int, index: int) -> int:
        """Weight change of *mask* when term *index* flips to uncertain.

        Value-constant by construction: by the time the delta is applied
        the statistics already hold the new verdict, so the old one is
        reconstructed from which memberships contribute to the term.
        """
        forward = mask >> index & 1
        backward = mask >> self._mirror[index] & 1
        if forward:
            return self._flip_fb if backward else self._flip_f
        return self._flip_b if backward else 0


__all__ = ["TaskTable", "task_table", "PairSet", "WeightKernel"]
