"""Negative examples and version-space consistency (paper's future work).

The paper closes with: "It could also be extended by version space
techniques provided negative examples in the execution traces." This
module provides that extension.

Two kinds of negative evidence are supported:

* :class:`ForbiddenBehavior` — a specification-level assertion that some
  executed-task set never occurs in any period ("the brake actuator never
  runs without the brake sensor"). A learned dependency function *rejects*
  a forbidden behavior when one of its certain arrows is violated by the
  behavior — i.e. the model already proves the behavior impossible.
* full negative *periods* — complete instances (executions + messages)
  asserted impossible; a hypothesis is consistent with one when the
  matching function ``M`` evaluates false on it.

Unlike positive instances, matching against negatives is not monotone in
the hypothesis order (a more general hypothesis has more arrows, so it
can both gain explanations and gain violated certainties), so the
consistent region is not an interval of the lattice. The honest and
useful operation is therefore *filtering and diagnosis* of the
most-specific set the positive-only learner produces — Mitchell's S
boundary — which is what :class:`VersionSpace` implements:

* which surviving hypotheses are consistent with all negative evidence;
* for each rejection, the certain arrows that prove it (the explanation a
  verification engineer wants);
* negatives that *no* survivor rejects, flagging either an insufficient
  trace or a wrong specification claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.depfunc import DependencyFunction
from repro.core.matching import matches_period
from repro.core.result import LearningResult
from repro.trace.period import Period


@dataclass(frozen=True)
class ForbiddenBehavior:
    """An executed-task set asserted to be impossible within one period."""

    executed: frozenset[str]
    description: str = ""

    def __init__(self, executed: Iterable[str], description: str = ""):
        object.__setattr__(self, "executed", frozenset(executed))
        object.__setattr__(self, "description", description)

    def __str__(self) -> str:
        label = self.description or "forbidden behavior"
        return f"{label}: {{{', '.join(sorted(self.executed))}}}"


@dataclass(frozen=True)
class ViolatedArrow:
    """One certain arrow that a forbidden behavior breaks."""

    source: str
    target: str
    value: str

    def __str__(self) -> str:
        return (
            f"d({self.source}, {self.target}) = {self.value} but "
            f"{self.source} runs without {self.target}"
        )


def violated_arrows(
    function: DependencyFunction, behavior: ForbiddenBehavior
) -> tuple[ViolatedArrow, ...]:
    """Certain arrows of *function* that *behavior* violates.

    A certain value at ``(a, b)`` (any of ``→``, ``←``, ``↔``) asserts
    that whenever ``a`` executes, ``b`` executes; the behavior violates it
    by running ``a`` without ``b``.
    """
    found = []
    for a, b, value in function.nonparallel_pairs():
        if not value.is_certain:
            continue
        if a in behavior.executed and b not in behavior.executed:
            found.append(ViolatedArrow(a, b, str(value)))
    found.sort(key=lambda arrow: (arrow.source, arrow.target))
    return tuple(found)


def rejects(function: DependencyFunction, behavior: ForbiddenBehavior) -> bool:
    """True if *function* proves *behavior* impossible."""
    return bool(violated_arrows(function, behavior))


@dataclass(frozen=True)
class NegativeVerdict:
    """Outcome of checking one piece of negative evidence."""

    evidence: str
    rejected_by_all: bool
    rejected_by_some: bool
    explanations: tuple[str, ...] = ()

    def __str__(self) -> str:
        if self.rejected_by_all:
            status = "REJECTED (all hypotheses)"
        elif self.rejected_by_some:
            status = "REJECTED (some hypotheses only)"
        else:
            status = "NOT REJECTED"
        return f"{status}: {self.evidence}"


class VersionSpace:
    """Consistency of a learned result against negative evidence.

    Parameters
    ----------
    result:
        A positive-only learning result (Mitchell's S boundary: the
        most-specific hypotheses consistent with the positive instances).
    """

    def __init__(self, result: LearningResult):
        self.result = result

    # ------------------------------------------------------------------
    # Forbidden behaviors (task-set negatives)
    # ------------------------------------------------------------------

    def check_behavior(self, behavior: ForbiddenBehavior) -> NegativeVerdict:
        """Which hypotheses prove *behavior* impossible."""
        rejections = [
            violated_arrows(function, behavior)
            for function in self.result.functions
        ]
        rejected = [arrows for arrows in rejections if arrows]
        explanations: tuple[str, ...] = ()
        if rejected:
            explanations = tuple(str(arrow) for arrow in rejected[0])
        return NegativeVerdict(
            evidence=str(behavior),
            rejected_by_all=len(rejected) == len(rejections),
            rejected_by_some=bool(rejected),
            explanations=explanations,
        )

    def consistent_functions(
        self, behaviors: Sequence[ForbiddenBehavior]
    ) -> list[DependencyFunction]:
        """Hypotheses that reject *every* forbidden behavior.

        These are the surviving hypotheses consistent with the negative
        evidence — the version-space elimination step.
        """
        return [
            function
            for function in self.result.functions
            if all(rejects(function, behavior) for behavior in behaviors)
        ]

    # ------------------------------------------------------------------
    # Full negative periods
    # ------------------------------------------------------------------

    def check_negative_period(
        self, period: Period, tolerance: float = 0.0
    ) -> NegativeVerdict:
        """Which hypotheses are inconsistent with (i.e. fail to match) a
        complete period asserted impossible."""
        non_matching = [
            not matches_period(function, period, tolerance)
            for function in self.result.functions
        ]
        return NegativeVerdict(
            evidence=f"negative period with tasks "
            f"{sorted(period.executed_tasks)} and "
            f"{len(period.messages)} messages",
            rejected_by_all=all(non_matching),
            rejected_by_some=any(non_matching),
        )

    def eliminate(
        self,
        behaviors: Sequence[ForbiddenBehavior] = (),
        periods: Sequence[Period] = (),
        tolerance: float = 0.0,
    ) -> "EliminationReport":
        """Run full candidate elimination against all negative evidence."""
        behavior_verdicts = [self.check_behavior(b) for b in behaviors]
        period_verdicts = [
            self.check_negative_period(p, tolerance) for p in periods
        ]
        surviving = [
            function
            for function in self.result.functions
            if all(rejects(function, b) for b in behaviors)
            and all(
                not matches_period(function, p, tolerance) for p in periods
            )
        ]
        return EliminationReport(
            surviving=surviving,
            behavior_verdicts=behavior_verdicts,
            period_verdicts=period_verdicts,
            original_count=len(self.result.functions),
        )


@dataclass
class EliminationReport:
    """Result of candidate elimination with negative evidence."""

    surviving: list[DependencyFunction]
    behavior_verdicts: list[NegativeVerdict]
    period_verdicts: list[NegativeVerdict] = field(default_factory=list)
    original_count: int = 0

    @property
    def eliminated_count(self) -> int:
        return self.original_count - len(self.surviving)

    @property
    def unrejected_evidence(self) -> list[NegativeVerdict]:
        """Negative evidence no hypothesis rejects.

        Non-empty means the trace did not expose enough behavior to prove
        the claim — or the claim is simply wrong about the system.
        """
        return [
            verdict
            for verdict in self.behavior_verdicts + self.period_verdicts
            if not verdict.rejected_by_some
        ]

    def summary(self) -> str:
        lines = [
            f"hypotheses: {self.original_count} -> {len(self.surviving)} "
            f"after negative evidence"
        ]
        for verdict in self.behavior_verdicts + self.period_verdicts:
            lines.append(f"  {verdict}")
            for explanation in verdict.explanations:
                lines.append(f"      because {explanation}")
        if self.unrejected_evidence:
            lines.append(
                "  WARNING: evidence above marked NOT REJECTED is not "
                "refuted by the learned model — insufficient trace or "
                "wrong specification claim"
            )
        return "\n".join(lines)
