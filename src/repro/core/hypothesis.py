"""Hypotheses: pair-set representation of dependency functions under learning.

During learning, a hypothesis is characterized by:

* ``pairs`` — the set of ordered ``(sender, receiver)`` pairs it has assumed
  for at least one message anywhere in the trace;
* ``period_pairs`` — the subset assumed within the *current* period, used to
  enforce the at-most-one-message-per-pair-per-period rule (Section 2.1);
* the shared :class:`~repro.core.stats.CoExecutionStats` of the learning
  run.

The hypothesis's dependency function is *derived*: for an ordered task pair
``(a, b)``,

* membership ``(a, b) ∈ pairs`` contributes a forward arrow to ``d(a, b)``
  — certain (``→``) if every period where ``a`` executed also executed
  ``b``, probable (``→?``) otherwise;
* membership ``(b, a) ∈ pairs`` contributes a backward arrow to ``d(a, b)``
  the same way;
* the two contributions combine by lattice LUB (yielding ``↔``/``↔?`` when
  both directions were assumed);
* with neither membership, ``d(a, b) = ‖``.

This representation is exact: two hypotheses have equal dependency
functions if and only if they have equal pair sets, and the pointwise
lattice order on functions coincides with pair-set inclusion (both proved
as properties in the test suite). That turns the paper's post-processing
into set operations — unification is pair-set deduplication and redundancy
elimination is strict-superset removal — and makes the heuristic's LUB
merge a set union.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from repro.core import lattice
from repro.core.depfunc import DependencyFunction
from repro.core.lattice import DepValue
from repro.core.stats import CoExecutionStats

Pair = tuple[str, str]


class Hypothesis:
    """One version-space hypothesis in pair-set form. Immutable."""

    __slots__ = ("pairs", "period_pairs", "_weight_cache")

    def __init__(
        self,
        pairs: FrozenSet[Pair] | Iterable[Pair] = frozenset(),
        period_pairs: FrozenSet[Pair] | Iterable[Pair] = frozenset(),
    ):
        self.pairs: frozenset[Pair] = frozenset(pairs)
        self.period_pairs: frozenset[Pair] = frozenset(period_pairs)
        if not self.period_pairs <= self.pairs:
            raise ValueError("period_pairs must be a subset of pairs")
        self._weight_cache: tuple[int, int] | None = None  # (version, weight)

    @classmethod
    def most_specific(cls) -> "Hypothesis":
        """The paper's ``d⊥``: no assumed dependencies at all."""
        return cls()

    # ------------------------------------------------------------------
    # Learning operations
    # ------------------------------------------------------------------

    def can_extend(self, pair: Pair) -> bool:
        """True if *pair* is not yet used for a message this period."""
        return pair not in self.period_pairs

    def extend(self, pair: Pair) -> "Hypothesis":
        """Assume one more message's sender-receiver pair this period.

        Generalizes only as much as necessary: the derived function grows by
        at most the one arrow the new pair contributes.
        """
        sender, receiver = pair
        if sender == receiver:
            raise ValueError(f"sender and receiver coincide: {pair}")
        return Hypothesis(self.pairs | {pair}, self.period_pairs | {pair})

    def end_period(self) -> "Hypothesis":
        """Drop the per-period assumptions (paper's assumption removal)."""
        if not self.period_pairs:
            return self
        return Hypothesis(self.pairs)

    def merge(self, other: "Hypothesis") -> "Hypothesis":
        """Least upper bound of two hypotheses (the heuristic's merge).

        Pair-set union; the per-period sets are united as well. The union
        blocking set stays sound: the first parent's per-period assignment
        is contained in it and remains a legal distinct assignment inside
        the union pair set, and later extensions only pick pairs outside
        the blocking set, so distinctness is preserved. (When the blocking
        set over-approximates so much that a later message finds every
        candidate claimed, the learner repairs by recomputing the period's
        assignment — see ``BoundedLearner._reassign_period``.)
        """
        return Hypothesis(
            self.pairs | other.pairs, self.period_pairs | other.period_pairs
        )

    # ------------------------------------------------------------------
    # Order and derived function
    # ------------------------------------------------------------------

    def leq(self, other: "Hypothesis") -> bool:
        """More-specific-than in the dependency-function lattice.

        With shared statistics this coincides with pair-set inclusion.
        """
        return self.pairs <= other.pairs

    def value(self, a: str, b: str, stats: CoExecutionStats) -> DepValue:
        """The derived dependency value ``d(a, b)`` under *stats*."""
        if a == b:
            return lattice.PARALLEL
        forward = (a, b) in self.pairs
        backward = (b, a) in self.pairs
        if not forward and not backward:
            return lattice.PARALLEL
        certain = stats.always_implies(a, b)
        result = lattice.PARALLEL
        if forward:
            result = lattice.DETERMINES if certain else lattice.MAY_DETERMINE
        if backward:
            back = lattice.DEPENDS if certain else lattice.MAY_DEPEND
            result = lattice.lub(result, back)
        return result

    def to_function(self, stats: CoExecutionStats) -> DependencyFunction:
        """Materialize the full dependency function under *stats*."""
        entries: dict[Pair, DepValue] = {}
        for a, b in self.pairs:
            entries[a, b] = self.value(a, b, stats)
            entries[b, a] = self.value(b, a, stats)
        return DependencyFunction(stats.tasks, entries)

    def weight(self, stats: CoExecutionStats) -> int:
        """Heuristic weight (paper Definition 8), memoized per stats version.

        Computed directly from the pair set without materializing the full
        function: each ordered task pair touched by an assumption
        contributes the square distance of its derived value.
        """
        cached = self._weight_cache
        if cached is not None and cached[0] == stats.version:
            return cached[1]
        touched: set[Pair] = set()
        for a, b in self.pairs:
            touched.add((a, b))
            touched.add((b, a))
        total = sum(
            lattice.distance(self.value(a, b, stats)) for a, b in touched
        )
        self._weight_cache = (stats.version, total)
        return total

    def prime_weight(self, version: int, weight: int) -> None:
        """Seed the :meth:`weight` memo with an externally maintained value.

        The bounded learner carries Definition 8 weights incrementally
        across periods (dirty-pair deltas, see
        :meth:`~repro.core.stats.CoExecutionStats.add_period`); priming the
        memo at the end of each period means a later :meth:`weight` call —
        e.g. the sort in ``result()`` — never recomputes from scratch on an
        unchanged stats version. Callers must only prime values computed
        with the default square distance, which is what :meth:`weight`
        reports.
        """
        self._weight_cache = (version, weight)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypothesis):
            return NotImplemented
        return self.pairs == other.pairs and self.period_pairs == other.period_pairs

    def __hash__(self) -> int:
        return hash((self.pairs, self.period_pairs))

    def __repr__(self) -> str:
        return (
            f"Hypothesis(pairs={sorted(self.pairs)}, "
            f"period_pairs={sorted(self.period_pairs)})"
        )
