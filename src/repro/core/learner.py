"""High-level learning facade.

:func:`learn_dependencies` is the library's main entry point: give it a
trace and optionally a hypothesis bound, get back a
:class:`~repro.core.result.LearningResult`.

>>> from repro.systems.examples import simple_four_task_design
>>> from repro.trace.synthetic import paper_figure2_trace
>>> result = learn_dependencies(paper_figure2_trace())
>>> len(result.functions)
5
>>> print(result.lub().value("t1", "t4"))
->
"""

from __future__ import annotations

from repro.core.batch import (
    BatchBoundedLearner,
    BatchExactLearner,
    learn_bounded_batch,
    learn_exact_batch,
    resolve_kernel,
)
from repro.core.exact import ExactLearner, learn_exact
from repro.core.heuristic import BoundedLearner, learn_bounded
from repro.core.result import LearningResult
from repro.core.sharded import learn_bounded_sharded, require_shardable
from repro.core.shardexec import ShardExecutorFactory, ShardPolicy
from repro.trace.trace import Trace


def learn_dependencies(
    trace: Trace,
    bound: int | None = None,
    tolerance: float = 0.0,
    max_hypotheses: int = 2_000_000,
    workers: int = 1,
    shard_policy: ShardPolicy | None = None,
    kernel: str = "auto",
    executor_factory: "ShardExecutorFactory | None" = None,
) -> LearningResult:
    """Learn the most-specific dependency hypotheses from *trace*.

    Parameters
    ----------
    trace:
        The execution trace (task universe + periods).
    bound:
        ``None`` runs the exact, exponential algorithm; a positive integer
        runs the polynomial bounded heuristic with that hypothesis bound.
    tolerance:
        Timing tolerance for candidate sender/receiver computation, in the
        trace's time unit. Use a small epsilon for quantized timestamps.
    max_hypotheses:
        Safety cap for the exact algorithm's working set.
    workers:
        ``1`` (the default) learns sequentially — bit-for-bit the classic
        path. ``N > 1`` requires a bound: the periods are split into
        ``N`` contiguous shards, each learned in its own process, and the
        shard outputs merged by LUB (:mod:`repro.core.sharded`). Sound by
        Theorem 2, but the merged model may be *less specific* than the
        sequential LUB.
    shard_policy:
        Fault-tolerance policy for the sharded path (timeouts, retries,
        shard splitting, degradation to sequential learning); ``None``
        uses :class:`~repro.core.shardexec.ShardPolicy`'s defaults.
        Ignored when ``workers=1``.
    kernel:
        Mask-kernel backend: ``"loop"`` (per-hypothesis hot loop),
        ``"batch"`` (vectorized array-of-masks backend,
        :mod:`repro.core.batch`), or ``"auto"`` (the default — batch
        when numpy is importable). The backends learn bit-for-bit
        identical models; the choice is purely a throughput knob.
    executor_factory:
        Execution substrate for the sharded path (``workers > 1``):
        ``None`` uses local process pools; a
        :class:`repro.distributed.TcpExecutorFactory` dispatches shards
        to remote ``repro worker`` daemons instead. Either way the
        model is bit-identical — only where the shards run changes.

    Returns
    -------
    LearningResult
        Surviving hypotheses, their LUB, and run metadata.
    """
    require_shardable(bound, workers)
    resolved = resolve_kernel(kernel)
    if bound is None:
        if resolved == "batch":
            return learn_exact_batch(trace, tolerance, max_hypotheses)
        return learn_exact(trace, tolerance, max_hypotheses)
    if workers > 1:
        return learn_bounded_sharded(
            trace, bound, tolerance, workers, policy=shard_policy,
            kernel=resolved, executor_factory=executor_factory,
        )
    if resolved == "batch":
        return learn_bounded_batch(trace, bound, tolerance)
    return learn_bounded(trace, bound, tolerance)


def make_learner(
    tasks,
    bound: int | None = None,
    tolerance: float = 0.0,
    kernel: str = "auto",
) -> ExactLearner | BoundedLearner:
    """An incremental learner for online use (feed periods as they arrive)."""
    resolved = resolve_kernel(kernel)
    if bound is None:
        if resolved == "batch":
            return BatchExactLearner(tasks, tolerance)
        return ExactLearner(tasks, tolerance)
    if resolved == "batch":
        return BatchBoundedLearner(tasks, bound, tolerance)
    return BoundedLearner(tasks, bound, tolerance)


__all__ = [
    "learn_dependencies",
    "make_learner",
    "LearningResult",
    "ExactLearner",
    "BoundedLearner",
    "BatchExactLearner",
    "BatchBoundedLearner",
    "learn_exact",
    "learn_bounded",
    "learn_exact_batch",
    "learn_bounded_batch",
    "learn_bounded_sharded",
    "resolve_kernel",
]
