"""Alternative weight functions for the bounded heuristic (ablation).

The paper's Definition 7 weights a dependency value by the *square* of
its height in the lattice, making the merge step strongly prefer
sacrificing specific hypotheses. The choice is a heuristic; this module
provides the paper's function plus two natural alternatives so the design
decision can be ablated (DESIGN.md §6):

* :func:`square_distance` — the paper's (0, 1, 4, 9);
* :func:`linear_distance` — lattice height (0, 1, 2, 3);
* :func:`entry_count` — 0 for ``‖``, 1 otherwise (pure sparsity).

All of them are monotone in the lattice order, which is what the
heuristic's soundness argument needs; the Lemma holds for any of them
(the merge bookkeeping, not the ordering, carries it) — checked in the
ablation benchmark.
"""

from __future__ import annotations

from typing import Callable

from repro.core import lattice
from repro.core.lattice import DepValue

DistanceFunction = Callable[[DepValue], int]


def square_distance(value: DepValue) -> int:
    """The paper's Definition 7 (square of the lattice height)."""
    return lattice.distance(value)


def linear_distance(value: DepValue) -> int:
    """Lattice height without squaring."""
    return lattice.level(value)


def entry_count(value: DepValue) -> int:
    """1 for any non-parallel value: weight = number of non-``‖`` cells."""
    return 0 if value is lattice.PARALLEL else 1


NAMED_DISTANCES: dict[str, DistanceFunction] = {
    "square": square_distance,
    "linear": linear_distance,
    "count": entry_count,
}


def is_monotone(distance: DistanceFunction) -> bool:
    """Check the soundness prerequisite: strictly monotone in the order."""
    for a in lattice.ALL_VALUES:
        for b in lattice.ALL_VALUES:
            if lattice.lt(a, b) and not distance(a) < distance(b):
                return False
    return True
