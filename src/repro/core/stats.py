"""Incremental co-execution statistics over a trace.

The value assigned to an assumed dependency pair is *certain* (``→``/``←``)
or *probable* (``→?``/``←?``) depending on whether the two tasks always
co-execute: ``d(s, r)`` can carry a certain forward arrow only if in every
period where ``s`` executed, ``r`` executed as well (paper Definition 5).

Hypotheses share one :class:`CoExecutionStats` instance per learning run; it
is updated once per period and consulted when hypothesis dependency
functions are materialized. Keeping these statistics global (rather than
per-hypothesis) is what makes the pair-set representation of hypotheses
exact: a hypothesis's dependency function is fully determined by the set of
sender-receiver pairs it has assumed plus these statistics.
"""

from __future__ import annotations

from typing import Iterable


class CoExecutionStats:
    """Counts, per ordered task pair, periods where one ran without the other.

    ``exclusive_count(s, r)`` is the number of periods seen so far in which
    ``s`` executed but ``r`` did not. ``always_implies(s, r)`` is then the
    paper's certainty condition for both ``d(s, r) = →`` and
    ``d(s, r) = ←`` (both are conditioned on the execution of the pair's
    *first* task).
    """

    __slots__ = ("_tasks", "_exclusive", "_executions", "_periods", "version")

    def __init__(self, tasks: Iterable[str]):
        self._tasks = tuple(tasks)
        self._exclusive: dict[tuple[str, str], int] = {}
        self._executions: dict[str, int] = {t: 0 for t in self._tasks}
        self._periods = 0
        #: Monotone counter, bumped once per period; used as a cache key by
        #: hypotheses so they can memoize weights between periods.
        self.version = 0

    @property
    def tasks(self) -> tuple[str, ...]:
        return self._tasks

    @property
    def period_count(self) -> int:
        """Number of periods folded in so far."""
        return self._periods

    def add_period(self, executed: Iterable[str]) -> None:
        """Fold one period's executed-task set into the statistics."""
        ran = set(executed)
        unknown = ran - set(self._tasks)
        if unknown:
            raise ValueError(f"unknown tasks in period: {sorted(unknown)}")
        for task in ran:
            self._executions[task] += 1
        idle = [t for t in self._tasks if t not in ran]
        for s in ran:
            for r in idle:
                key = (s, r)
                self._exclusive[key] = self._exclusive.get(key, 0) + 1
        self._periods += 1
        self.version += 1

    def exclusive_count(self, s: str, r: str) -> int:
        """Periods in which *s* executed but *r* did not."""
        return self._exclusive.get((s, r), 0)

    def execution_count(self, task: str) -> int:
        """Periods in which *task* executed."""
        return self._executions[task]

    def always_implies(self, s: str, r: str) -> bool:
        """True iff every period where *s* executed, *r* executed too.

        Vacuously true if *s* never executed; a dependency pair can only be
        assumed for tasks that executed, so the vacuous case never reaches a
        hypothesis's dependency function.
        """
        return self.exclusive_count(s, r) == 0

    def snapshot(self) -> "CoExecutionStats":
        """An independent copy (used by learners that branch exploration)."""
        copy = CoExecutionStats(self._tasks)
        copy._exclusive = dict(self._exclusive)
        copy._executions = dict(self._executions)
        copy._periods = self._periods
        copy.version = self.version
        return copy

    def __repr__(self) -> str:
        return (
            f"CoExecutionStats(tasks={len(self._tasks)}, "
            f"periods={self._periods})"
        )
