"""Incremental co-execution statistics over a trace.

The value assigned to an assumed dependency pair is *certain* (``→``/``←``)
or *probable* (``→?``/``←?``) depending on whether the two tasks always
co-execute: ``d(s, r)`` can carry a certain forward arrow only if in every
period where ``s`` executed, ``r`` executed as well (paper Definition 5).

Hypotheses share one :class:`CoExecutionStats` instance per learning run; it
is updated once per period and consulted when hypothesis dependency
functions are materialized. Keeping these statistics global (rather than
per-hypothesis) is what makes the pair-set representation of hypotheses
exact: a hypothesis's dependency function is fully determined by the set of
sender-receiver pairs it has assumed plus these statistics.
"""

from __future__ import annotations

from typing import Iterable

#: An ordered ``(s, r)`` task pair, as used by ``exclusive_count``.
OrderedPair = tuple[str, str]


class CoExecutionStats:
    """Counts, per ordered task pair, periods where one ran without the other.

    ``exclusive_count(s, r)`` is the number of periods seen so far in which
    ``s`` executed but ``r`` did not. ``always_implies(s, r)`` is then the
    paper's certainty condition for both ``d(s, r) = →`` and
    ``d(s, r) = ←`` (both are conditioned on the execution of the pair's
    *first* task).

    Because the exclusive counts only grow, ``always_implies`` can flip at
    most once per ordered pair — from certain to uncertain — over a whole
    run. :meth:`add_period` reports exactly the pairs that flipped (the
    *dirty pairs*), which is what lets the bounded learner maintain
    Definition 8 weights incrementally instead of recomputing them from
    scratch every period.
    """

    __slots__ = ("_tasks", "_exclusive", "_executions", "_periods", "version")

    def __init__(self, tasks: Iterable[str]):
        self._tasks = tuple(tasks)
        self._exclusive: dict[tuple[str, str], int] = {}
        self._executions: dict[str, int] = {t: 0 for t in self._tasks}
        self._periods = 0
        #: Monotone counter, bumped once per period; used as a cache key by
        #: hypotheses so they can memoize weights between periods.
        self.version = 0

    @property
    def tasks(self) -> tuple[str, ...]:
        return self._tasks

    @property
    def period_count(self) -> int:
        """Number of periods folded in so far."""
        return self._periods

    def add_period(self, executed: Iterable[str]) -> frozenset[OrderedPair]:
        """Fold one period's executed-task set into the statistics.

        Returns the set of *dirty ordered pairs*: pairs ``(s, r)`` whose
        ``always_implies(s, r)`` verdict flipped this period. Counts are
        monotone, so a flip is always certain → uncertain and happens
        exactly when ``exclusive_count(s, r)`` leaves zero. Callers that
        cache anything derived from ``always_implies`` (hypothesis
        weights, materialized dependency functions) need to re-examine
        only these pairs.
        """
        ran = set(executed)
        unknown = ran - set(self._tasks)
        if unknown:
            raise ValueError(f"unknown tasks in period: {sorted(unknown)}")
        for task in ran:
            self._executions[task] += 1
        idle = [t for t in self._tasks if t not in ran]
        dirty: list[OrderedPair] = []
        for s in ran:
            for r in idle:
                key = (s, r)
                count = self._exclusive.get(key, 0)
                if count == 0:
                    dirty.append(key)
                self._exclusive[key] = count + 1
        self._periods += 1
        self.version += 1
        return frozenset(dirty)

    def remove_period(self, executed: Iterable[str]) -> None:
        """Reverse the most recent :meth:`add_period` of this executed set.

        Used by the learners to make ``feed`` all-or-nothing: a period
        whose messages cannot be processed is un-absorbed so the learner
        stays consistent and can keep feeding. The version counter is
        *bumped*, not decremented — it must stay monotone so any weight
        memoized against the rolled-back version can never be mistaken
        for current.
        """
        ran = set(executed)
        unknown = ran - set(self._tasks)
        if unknown:
            raise ValueError(f"unknown tasks in period: {sorted(unknown)}")
        if self._periods == 0:
            raise ValueError("no period to remove")
        for task in ran:
            self._executions[task] -= 1
        idle = [t for t in self._tasks if t not in ran]
        for s in ran:
            for r in idle:
                key = (s, r)
                count = self._exclusive[key] - 1
                if count:
                    self._exclusive[key] = count
                else:
                    # Drop zero entries so the mapping stays identical to
                    # one that never saw the period (checkpoints serialize
                    # only positive counts).
                    del self._exclusive[key]
        self._periods -= 1
        self.version += 1

    def exclusive_count(self, s: str, r: str) -> int:
        """Periods in which *s* executed but *r* did not."""
        return self._exclusive.get((s, r), 0)

    def execution_count(self, task: str) -> int:
        """Periods in which *task* executed."""
        return self._executions[task]

    def always_implies(self, s: str, r: str) -> bool:
        """True iff every period where *s* executed, *r* executed too.

        Vacuously true if *s* never executed; a dependency pair can only be
        assumed for tasks that executed, so the vacuous case never reaches a
        hypothesis's dependency function.
        """
        return self.exclusive_count(s, r) == 0

    def certain_flags(self, table) -> list[bool]:
        """Index-addressed ``always_implies``: the fast path of the kernel.

        Returns a dense list over the pair indices of *table* (a
        :class:`~repro.core.interning.TaskTable`) with ``flags[i]`` the
        ``always_implies`` verdict of the ordered pair at index ``i``.
        Built in one pass over the sparse exclusive counts — ``O(t^2)``
        allocation plus one write per non-zero count — instead of
        ``t^2`` keyed dictionary probes.
        """
        flags = [True] * (table.task_count * table.task_count)
        t = table.task_count
        task_id = table.task_id
        for (s, r), count in self._exclusive.items():
            if count:
                flags[task_id(s) * t + task_id(r)] = False
        return flags

    def merge(self, other: "CoExecutionStats") -> None:
        """Fold another run's counts into this one (shard merging).

        The statistics are pure per-period counts, so folding in the
        counts of a run over a *disjoint* set of periods yields exactly
        the statistics of a single run over the union — order never
        matters. This is what makes shard-parallel learning's LUB merge
        exact on the certainty dimension: the merged learner judges
        ``always_implies`` against the whole trace, not one shard.

        The version counter advances by the other run's period count so
        any weight memoized against a pre-merge version is invalidated.
        """
        if self._tasks != other._tasks:
            raise ValueError(
                "cannot merge statistics over different task universes"
            )
        for key, count in other._exclusive.items():
            self._exclusive[key] = self._exclusive.get(key, 0) + count
        for task, count in other._executions.items():
            self._executions[task] += count
        self._periods += other._periods
        self.version += max(other._periods, 1)

    def snapshot(self) -> "CoExecutionStats":
        """An independent copy (used by learners that branch exploration)."""
        copy = CoExecutionStats(self._tasks)
        copy._exclusive = dict(self._exclusive)
        copy._executions = dict(self._executions)
        copy._periods = self._periods
        copy.version = self.version
        return copy

    def __repr__(self) -> str:
        return (
            f"CoExecutionStats(tasks={len(self._tasks)}, "
            f"periods={self._periods})"
        )
