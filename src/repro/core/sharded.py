"""Shard-parallel bounded learning: split periods, learn, merge by LUB.

The bounded heuristic is sound under least-upper-bound generalization
(paper Theorem 2): every hypothesis it keeps matches every processed
instance, and taking a LUB only ever *generalizes*. That gives sharding
for free on the soundness side — run an independent
:class:`~repro.core.heuristic.BoundedLearner` over each contiguous chunk
of the trace's periods and combine the chunk outputs with the lattice
LUB, and the merged model still matches every period of the whole trace.

The merge is done at the pair-set level, where the LUB is a plain set
union (see :mod:`repro.core.hypothesis`):

* the merged hypothesis's pair set is the union over shards of the union
  of each shard's surviving pair sets (each shard's contribution is its
  own ``⊔D*``, which by the paper's Lemma equals its bound-1 run);
* the merged co-execution statistics are the *sum* of the shard
  statistics — per-period counts are order-independent, so the summed
  statistics are identical to a sequential run's, and the merged model's
  certain/probable verdicts are judged against the whole trace rather
  than any single shard.

What sharding can lose is *specificity*, never soundness: a sequential
run merges lightest-first across the whole trace, a sharded run merges
within shards only, so the merged LUB may sit higher in the lattice than
the sequential LUB. (Empirically it rarely does: by the Lemma each
shard's LUB already equals its bound-1 union, and those unions compose.)
The differential tests in ``tests/test_sharded.py`` pin both directions:
``workers=1`` is bit-for-bit the sequential path, and ``workers>=2`` is
always ``⊒`` the sequential LUB, with the specificity gap quantified by
the Definition 8 weight.

Workers are OS processes (:class:`concurrent.futures.ProcessPoolExecutor`)
because the hot loop is pure Python and the GIL would serialize threads.
Shards are contiguous period ranges so streamed traces shard by reading
position. For an mmap-backed store trace
(:class:`~repro.trace.store.StoreTrace`), :func:`split_periods` slices
lazy zero-copy ranges and the runtime keeps them lazy
(:class:`~repro.trace.columnar.LazyPeriods`), so the pickle payload a
worker receives is the O(1) handle ``(store_path, period_range)`` rather
than O(events) of pickled periods — each worker process maps the store
itself and materializes only the periods it feeds.

Execution is delegated to the fault-tolerant runtime in
:mod:`repro.core.shardexec`: per-shard timeouts, bounded retries with
deterministic backoff, automatic bisection of repeatedly-failing shards,
executor rebuilds after ``BrokenProcessPool``, and graceful degradation
to in-process sequential learning — all behind one
:class:`~repro.core.shardexec.ShardPolicy` value. The LUB merge is a
commutative, associative fold, so none of that machinery can change the
answer for a fixed shard partition (and a bisected partition can only
generalize, never lose soundness).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.core.heuristic import BoundedLearner
from repro.core.hypothesis import Hypothesis
from repro.core.instrumentation import HotLoopCounters, hot_loop
from repro.core.interning import TaskTable
from repro.core.result import LearningResult
from repro.core.shardexec import (
    ShardExecutorFactory,
    ShardPolicy,
    ShardRuntime,
    apply_chaos,
)
from repro.core.stats import CoExecutionStats
from repro.errors import LearningError
from repro.trace.period import Period
from repro.trace.trace import Trace


@dataclass
class ShardOutcome:
    """What one shard's learner sends back to the coordinator.

    Deliberately smaller than a full :class:`LearningResult`: the
    coordinator needs the union pair set (the shard's LUB in pair-set
    form), the shard statistics, and the run counters — not the shard's
    materialized functions, which would be judged against shard-local
    certainty and thrown away anyway.

    The pair set crosses the process boundary as a single interned
    bitmask (``pairs_mask``), not a string set: the
    :class:`~repro.core.interning.TaskTable` is a pure function of the
    task universe, so every worker and the coordinator agree on pair
    indices without shipping the table itself.
    """

    pairs_mask: int
    stats: CoExecutionStats
    periods: int
    messages: int
    peak_hypotheses: int
    merge_count: int
    elapsed_seconds: float
    hot_loop: HotLoopCounters


@hot_loop
def split_periods(
    periods: Sequence[Period], shard_count: int
) -> list[Sequence[Period]]:
    """Split *periods* into at most *shard_count* contiguous, balanced runs.

    Every shard gets at least one period; sizes differ by at most one.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    count = min(shard_count, len(periods))
    if count == 0:
        return []
    base, extra = divmod(len(periods), count)
    shards: list[Sequence[Period]] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        shards.append(periods[start:start + size])
        start += size
    return shards


@hot_loop
def learn_shard(
    tasks: Sequence[str],
    periods: Sequence[Period],
    bound: int,
    tolerance: float,
    kernel: str = "loop",
) -> ShardOutcome:
    """Run one shard's bounded learner (executed in a worker process)."""
    if kernel == "batch":
        from repro.core.batch import BatchBoundedLearner

        learner: BoundedLearner = BatchBoundedLearner(tasks, bound, tolerance)
    else:
        learner = BoundedLearner(tasks, bound, tolerance)
    learner.feed_trace(periods)
    union = 0
    for mask in learner._masks:
        union |= mask
    return ShardOutcome(
        pairs_mask=union,
        stats=learner.stats,
        periods=learner._periods,
        messages=learner._messages,
        peak_hypotheses=learner._peak,
        merge_count=learner._merges,
        elapsed_seconds=learner._elapsed,
        hot_loop=learner._counters.copy(),
    )


def _learn_shard_args(args: tuple) -> ShardOutcome:
    """Worker entry point: one argument tuple, executed in a pool process.

    The tuple is ``(tasks, periods, bound, tolerance, shard_index,
    attempt)``; the trailing pair keys the deterministic ``REPRO_CHAOS``
    fault injection (crash / hang / slow / fail by shard index and
    attempt — see :func:`repro.core.shardexec.parse_chaos`), which is
    how the chaos suite exercises every recovery path of the runtime
    without real OOMs. With ``REPRO_CHAOS`` unset this is a no-op.
    """
    tasks, periods, bound, tolerance, index, attempt = args
    apply_chaos(index, attempt)
    return learn_shard(tasks, periods, bound, tolerance)


def _learn_shard_fallback(args: tuple) -> ShardOutcome:
    """In-process fallback for degraded shards: same learn, no pool.

    Deliberately skips :func:`~repro.core.shardexec.apply_chaos` — the
    degraded path exists to complete the learn when workers cannot, so
    injected worker faults must not follow the shard in-process.
    """
    tasks, periods, bound, tolerance = args
    return learn_shard(tasks, periods, bound, tolerance)


def _learn_shard_args_batch(args: tuple) -> ShardOutcome:
    """Batch-kernel twin of :func:`_learn_shard_args` (same tuple shape)."""
    tasks, periods, bound, tolerance, index, attempt = args
    apply_chaos(index, attempt)
    return learn_shard(tasks, periods, bound, tolerance, kernel="batch")


def _learn_shard_fallback_batch(args: tuple) -> ShardOutcome:
    """Batch-kernel twin of :func:`_learn_shard_fallback`."""
    tasks, periods, bound, tolerance = args
    return learn_shard(tasks, periods, bound, tolerance, kernel="batch")


# Boundary code: decodes the merged LUB mask back to string pairs.
# repro-lint: ignore[RL002]
def merge_outcomes(
    tasks: Sequence[str],
    outcomes: Sequence[ShardOutcome],
    bound: int,
    workers: int,
    elapsed_seconds: float,
) -> LearningResult:
    """LUB-merge per-shard outcomes into one learning result."""
    if not outcomes:
        # Zero periods: same shape the sequential learner returns on an
        # empty trace — the single most-specific hypothesis.
        learner = BoundedLearner(tasks, bound)
        result = learner.result()
        result.workers = workers
        return result
    stats = CoExecutionStats(tasks)
    counters = HotLoopCounters()
    pairs_mask = 0
    for outcome in outcomes:
        stats.merge(outcome.stats)
        counters.merge(outcome.hot_loop)
        pairs_mask |= outcome.pairs_mask
    # The LUB of masks decodes through a coordinator-side table built
    # from the same task universe as every worker's.
    merged = Hypothesis(TaskTable(tasks).pairs_of(pairs_mask))
    return LearningResult(
        functions=[merged.to_function(stats)],
        hypotheses=[merged],
        stats=stats,
        algorithm="heuristic",
        bound=bound,
        periods=sum(o.periods for o in outcomes),
        messages=sum(o.messages for o in outcomes),
        peak_hypotheses=max(o.peak_hypotheses for o in outcomes),
        elapsed_seconds=elapsed_seconds,
        merge_count=sum(o.merge_count for o in outcomes),
        workers=workers,
        hot_loop=counters,
    )


def learn_bounded_sharded(
    trace: Trace,
    bound: int,
    tolerance: float = 0.0,
    workers: int = 2,
    policy: ShardPolicy | None = None,
    kernel: str = "loop",
    executor_factory: "ShardExecutorFactory | None" = None,
) -> LearningResult:
    """Learn *trace* across *workers* period shards and LUB-merge.

    Sound by construction (LUB only generalizes — Theorem 2); the merged
    result can be less specific than a sequential run's LUB, never more.
    ``workers=1`` is not special-cased here on purpose: callers wanting
    the bit-for-bit sequential path should use
    :func:`~repro.core.learner.learn_dependencies`, which routes
    ``workers=1`` to :func:`~repro.core.heuristic.learn_bounded` without
    touching a process pool.

    *policy* configures the fault-tolerant runtime (timeouts, retries,
    splitting, degradation — see
    :class:`~repro.core.shardexec.ShardPolicy`); the default tolerates a
    couple of worker failures and degrades to in-process sequential
    learning rather than fail. Failures never surface as a bare
    ``BrokenProcessPool``: a terminal shard failure raises
    :class:`~repro.errors.ShardExecutionError` naming the shard's period
    range and attempt count. The runtime's recovery counters
    (retries, splits, pool rebuilds, degraded shards) are folded into
    the returned result's ``hot_loop`` counters.

    *kernel* selects the mask-kernel backend every worker runs
    (``"loop"`` or ``"batch"`` — resolve ``"auto"`` with
    :func:`repro.core.batch.resolve_kernel` before calling): the two are
    bit-for-bit identical per shard, so the merged LUB is too.

    *executor_factory* plugs a different execution substrate into the
    runtime (see :class:`~repro.core.shardexec.ShardExecutorFactory`);
    ``None`` keeps the local process pool. The distributed scheduler
    passes a :class:`repro.distributed.TcpExecutorFactory` here — note
    that a one-shard learn (``workers=1`` or a tiny trace) still runs
    in-process, factory or not, because there is nothing to schedule.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if bound < 1:
        raise ValueError(f"bound must be >= 1, got {bound}")
    policy = policy if policy is not None else ShardPolicy()
    started = time.perf_counter()
    shards = split_periods(trace.periods, workers)
    runtime = None
    if len(shards) <= 1:
        # One shard (or an empty trace): the pool would only add overhead.
        outcomes = [
            learn_shard(trace.tasks, shard, bound, tolerance, kernel=kernel)
            for shard in shards
        ]
    else:
        batch = kernel == "batch"
        runtime = ShardRuntime(
            trace.tasks,
            bound,
            tolerance,
            workers=len(shards),
            policy=policy,
            worker=_learn_shard_args_batch if batch else _learn_shard_args,
            fallback=(
                _learn_shard_fallback_batch if batch else _learn_shard_fallback
            ),
            executor_factory=executor_factory,
        )
        outcomes = runtime.run(shards)
    result = merge_outcomes(
        trace.tasks,
        outcomes,
        bound,
        workers,
        time.perf_counter() - started,
    )
    result.kernel = kernel
    if runtime is not None and result.hot_loop is not None:
        result.hot_loop.merge(runtime.counters)
    return result


def require_shardable(bound: int | None, workers: int) -> None:
    """Validate a (bound, workers) combination before dispatch.

    The exact algorithm's output is the *most-specific set*, which has no
    sound cross-shard merge (a LUB of shard-wise most-specific sets is
    not most-specific); only the bounded heuristic's Theorem 2 soundness
    survives sharding.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers > 1 and bound is None:
        raise LearningError(
            "workers > 1 requires a hypothesis bound: the exact "
            "algorithm's most-specific set cannot be soundly merged "
            "across shards (pass bound=b or workers=1)"
        )
