"""The dependency-value lattice ``V`` (paper Definition 5 and Figure 3).

The seven dependency values describe what one task's execution implies about
another's within a period:

========  =============================================================
value     meaning for ``d(t1, t2)``
========  =============================================================
``‖``     *parallel*: t1 never depends on / determines t2
``→``     if t1 executes, it always determines the execution of t2
``←``     if t1 executes, it always depends on the execution of t2
``↔``     t1 and t2 always depend on each other (never observable;
          defined for lattice completeness)
``→?``    t1 may or may not determine t2
``←?``    t1 may or may not depend on t2
``↔?``    t1 and t2 may or may not depend on / determine each other
========  =============================================================

The partial order (Figure 3) is a four-level lattice::

                ↔?                 (least specific / top)
             /   |   \\
           →?    ↔    ←?
            | \\ /  \\ / |
            |  X    X  |
            | / \\  / \\ |
           →            ←
             \\        /
                 ‖                 (most specific / bottom)

i.e. ``‖ < → < {→?, ↔} < ↔?`` and ``‖ < ← < {←?, ↔} < ↔?``.

The module provides the partial order, least upper bound (``lub``), greatest
lower bound (``glb``), the heuristic's square-distance weight (paper
Definition 7), and helper predicates used throughout the learner.
"""

from __future__ import annotations

import enum
from typing import Iterable


class DepValue(enum.Enum):
    """One of the seven dependency values of the lattice ``V``."""

    PARALLEL = "||"
    DETERMINES = "->"
    DEPENDS = "<-"
    MUTUAL = "<->"
    MAY_DETERMINE = "->?"
    MAY_DEPEND = "<-?"
    MAY_MUTUAL = "<->?"

    def __str__(self) -> str:
        return self.value

    def __repr__(self) -> str:
        return f"DepValue({self.value!r})"

    @property
    def is_directed(self) -> bool:
        """True for the four values that assert a definite direction."""
        return self in _DIRECTED

    @property
    def is_certain(self) -> bool:
        """True for values without a question mark (``‖``, ``→``, ``←``, ``↔``)."""
        return self in _CERTAIN

    @property
    def has_forward(self) -> bool:
        """True if the value includes a (possible) forward arrow t1 → t2."""
        return self in _HAS_FORWARD

    @property
    def has_backward(self) -> bool:
        """True if the value includes a (possible) backward arrow t1 ← t2."""
        return self in _HAS_BACKWARD

    @property
    def mirror(self) -> "DepValue":
        """The value seen from the opposite side of the pair.

        ``d(t1, t2) = →`` corresponds to ``d(t2, t1) = ←`` when a relation is
        symmetric in evidence; the learner uses independent entries per
        direction, but serialization and several analyses need the mirror.
        """
        return _MIRROR[self]


# Short aliases matching the paper's notation.
PARALLEL = DepValue.PARALLEL
DETERMINES = DepValue.DETERMINES
DEPENDS = DepValue.DEPENDS
MUTUAL = DepValue.MUTUAL
MAY_DETERMINE = DepValue.MAY_DETERMINE
MAY_DEPEND = DepValue.MAY_DEPEND
MAY_MUTUAL = DepValue.MAY_MUTUAL

ALL_VALUES: tuple[DepValue, ...] = (
    PARALLEL,
    DETERMINES,
    DEPENDS,
    MUTUAL,
    MAY_DETERMINE,
    MAY_DEPEND,
    MAY_MUTUAL,
)

_DIRECTED = frozenset({DETERMINES, DEPENDS, MAY_DETERMINE, MAY_DEPEND})
_CERTAIN = frozenset({PARALLEL, DETERMINES, DEPENDS, MUTUAL})
_HAS_FORWARD = frozenset({DETERMINES, MUTUAL, MAY_DETERMINE, MAY_MUTUAL})
_HAS_BACKWARD = frozenset({DEPENDS, MUTUAL, MAY_DEPEND, MAY_MUTUAL})

_MIRROR = {
    PARALLEL: PARALLEL,
    DETERMINES: DEPENDS,
    DEPENDS: DETERMINES,
    MUTUAL: MUTUAL,
    MAY_DETERMINE: MAY_DEPEND,
    MAY_DEPEND: MAY_DETERMINE,
    MAY_MUTUAL: MAY_MUTUAL,
}

# Level of each value in the Figure 3 lattice (bottom = 0).
_LEVEL = {
    PARALLEL: 0,
    DETERMINES: 1,
    DEPENDS: 1,
    MAY_DETERMINE: 2,
    MUTUAL: 2,
    MAY_DEPEND: 2,
    MAY_MUTUAL: 3,
}

# Covering relation of the Figure 3 lattice: value -> immediate successors.
_COVERS: dict[DepValue, frozenset[DepValue]] = {
    PARALLEL: frozenset({DETERMINES, DEPENDS}),
    DETERMINES: frozenset({MAY_DETERMINE, MUTUAL}),
    DEPENDS: frozenset({MAY_DEPEND, MUTUAL}),
    MAY_DETERMINE: frozenset({MAY_MUTUAL}),
    MUTUAL: frozenset({MAY_MUTUAL}),
    MAY_DEPEND: frozenset({MAY_MUTUAL}),
    MAY_MUTUAL: frozenset(),
}


def _compute_order() -> dict[DepValue, frozenset[DepValue]]:
    """Reflexive-transitive closure of the covering relation.

    Returns a map from each value to the set of values greater than or equal
    to it (its up-set).
    """
    up: dict[DepValue, set[DepValue]] = {v: {v} for v in ALL_VALUES}
    # The lattice has 4 levels; iterate to a fixed point.
    changed = True
    while changed:
        changed = False
        for value in ALL_VALUES:
            for successor in _COVERS[value]:
                new = up[successor] - up[value]
                if new:
                    up[value] |= new
                    changed = True
    return {v: frozenset(s) for v, s in up.items()}


_UP_SET = _compute_order()
_DOWN_SET: dict[DepValue, frozenset[DepValue]] = {
    v: frozenset(u for u in ALL_VALUES if v in _UP_SET[u]) for v in ALL_VALUES
}


def leq(a: DepValue, b: DepValue) -> bool:
    """``a ⊑ b``: *a* is more specific than (or equal to) *b*.

    Paper Definition 4: more specific hypotheses match fewer instances; the
    bottom ``‖`` is the most specific value, the top ``↔?`` the least.
    """
    return b in _UP_SET[a]


def lt(a: DepValue, b: DepValue) -> bool:
    """Strict version of :func:`leq`."""
    return a is not b and leq(a, b)


def comparable(a: DepValue, b: DepValue) -> bool:
    """True if *a* and *b* are ordered either way in the lattice."""
    return leq(a, b) or leq(b, a)


def lub(a: DepValue, b: DepValue) -> DepValue:
    """Least upper bound ``a ⊔ b`` of two dependency values.

    The lattice in Figure 3 has unique LUBs; this is the generalization
    operator used by the heuristic's merge step and by :func:`lub_many`.
    """
    return _LUB[a, b]


def glb(a: DepValue, b: DepValue) -> DepValue:
    """Greatest lower bound ``a ⊓ b`` of two dependency values."""
    return _GLB[a, b]


def _pick_unique(candidates: Iterable[DepValue], kind: str, a: DepValue, b: DepValue) -> DepValue:
    ordered = sorted(candidates, key=lambda v: _LEVEL[v])
    if not ordered:
        raise ValueError(f"no {kind} for {a} and {b}: lattice corrupt")
    return ordered[0] if kind == "lub" else ordered[-1]


def _compute_lub_table() -> dict[tuple[DepValue, DepValue], DepValue]:
    table = {}
    for a in ALL_VALUES:
        for b in ALL_VALUES:
            upper = _UP_SET[a] & _UP_SET[b]
            # Minimal elements of the common up-set; Figure 3 guarantees a
            # unique one (it is a lattice).
            minimal = [u for u in upper if not any(lt(v, u) for v in upper)]
            if len(minimal) != 1:
                raise ValueError(f"LUB of {a}, {b} not unique: {minimal}")
            table[a, b] = minimal[0]
    return table


def _compute_glb_table() -> dict[tuple[DepValue, DepValue], DepValue]:
    table = {}
    for a in ALL_VALUES:
        for b in ALL_VALUES:
            lower = _DOWN_SET[a] & _DOWN_SET[b]
            maximal = [u for u in lower if not any(lt(u, v) for v in lower)]
            if len(maximal) != 1:
                raise ValueError(f"GLB of {a}, {b} not unique: {maximal}")
            table[a, b] = maximal[0]
    return table


_LUB = _compute_lub_table()
_GLB = _compute_glb_table()


def lub_many(values: Iterable[DepValue]) -> DepValue:
    """LUB of an arbitrary collection; ``‖`` for an empty collection."""
    result = PARALLEL
    for value in values:
        result = _LUB[result, value]
    return result


def glb_many(values: Iterable[DepValue]) -> DepValue:
    """GLB of an arbitrary collection; ``↔?`` for an empty collection."""
    result = MAY_MUTUAL
    for value in values:
        result = _GLB[result, value]
    return result


def distance(value: DepValue) -> int:
    """Square distance from the lattice bottom (paper Definition 7).

    ``‖ -> 0``, ``→/← -> 1``, ``→?/↔/←? -> 4``, ``↔? -> 9``; i.e. the
    square of the value's level in the lattice. The heuristic's weight
    function sums this over all task pairs.
    """
    return _LEVEL[value] ** 2


def level(value: DepValue) -> int:
    """Height of *value* in the Figure 3 lattice (bottom ``‖`` is 0)."""
    return _LEVEL[value]


def parse_value(text: str) -> DepValue:
    """Parse a dependency value from its textual form.

    Accepts the ASCII forms used by :class:`DepValue` (``||``, ``->``,
    ``<-``, ``<->``, ``->?``, ``<-?``, ``<->?``) as well as the Unicode
    arrows used in the paper (``‖``, ``→``, ``←``, ``↔`` and their ``?``
    variants).
    """
    normalized = (
        text.strip()
        .replace("‖", "||")
        .replace("↔", "<->")
        .replace("→", "->")
        .replace("←", "<-")
    )
    for value in ALL_VALUES:
        if value.value == normalized:
            return value
    raise ValueError(f"unknown dependency value: {text!r}")
