"""Dependency functions ``d : T × T → V`` (paper Definition 5).

A :class:`DependencyFunction` assigns a dependency value to every ordered
pair of distinct tasks. The diagonal is fixed at ``‖`` (a task neither
depends on nor determines itself in this formalism).

The set ``D`` of all dependency functions over a task set, ordered
pointwise by the value lattice, is itself a lattice (paper Section 2.3);
this module supplies the pointwise order, LUB/GLB, the heuristic weight
(paper Definition 8), and table rendering matching the paper's figures.

Functions are immutable; all "modifying" operations return new instances.
Internally entries are stored sparsely: only non-``‖`` pairs are kept,
which keeps hypothesis tracking cheap for the large sparse matrices the
case study produces.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.core import lattice
from repro.core.lattice import DepValue, PARALLEL


class DependencyFunction:
    """An immutable map from ordered task pairs to dependency values.

    Parameters
    ----------
    tasks:
        The task universe ``T``, as an ordered sequence of unique names.
        Order only affects rendering, not semantics.
    entries:
        Mapping from ``(t1, t2)`` name pairs to :class:`DepValue`. Pairs
        absent from the mapping default to ``‖``. Diagonal entries and
        entries equal to ``‖`` are dropped.
    """

    __slots__ = ("_tasks", "_index", "_entries", "_hash")

    def __init__(
        self,
        tasks: Iterable[str],
        entries: Mapping[tuple[str, str], DepValue] | None = None,
    ):
        self._tasks = tuple(tasks)
        if len(set(self._tasks)) != len(self._tasks):
            raise ValueError("duplicate task names in dependency function")
        self._index = {name: i for i, name in enumerate(self._tasks)}
        cleaned: dict[tuple[str, str], DepValue] = {}
        if entries:
            for (t1, t2), value in entries.items():
                if t1 not in self._index or t2 not in self._index:
                    raise ValueError(f"entry ({t1}, {t2}) names unknown task")
                if t1 == t2:
                    if value is not PARALLEL:
                        raise ValueError(f"diagonal entry ({t1}, {t1}) must be ‖")
                    continue
                if value is not PARALLEL:
                    cleaned[t1, t2] = value
        self._entries = cleaned
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def bottom(cls, tasks: Iterable[str]) -> "DependencyFunction":
        """The most specific hypothesis ``d⊥`` (everything ``‖``)."""
        return cls(tasks)

    @classmethod
    def top(cls, tasks: Iterable[str]) -> "DependencyFunction":
        """The least specific hypothesis ``d⊤`` (everything ``↔?``)."""
        names = tuple(tasks)
        entries = {
            (a, b): lattice.MAY_MUTUAL for a in names for b in names if a != b
        }
        return cls(names, entries)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def tasks(self) -> tuple[str, ...]:
        """The task universe, in rendering order."""
        return self._tasks

    def value(self, t1: str, t2: str) -> DepValue:
        """The dependency value ``d(t1, t2)``."""
        if t1 not in self._index or t2 not in self._index:
            raise KeyError(f"unknown task in pair ({t1}, {t2})")
        return self._entries.get((t1, t2), PARALLEL)

    def __getitem__(self, pair: tuple[str, str]) -> DepValue:
        return self.value(*pair)

    def nonparallel_pairs(self) -> Iterator[tuple[str, str, DepValue]]:
        """Iterate ``(t1, t2, value)`` for every non-``‖`` entry."""
        for (t1, t2), value in self._entries.items():
            yield t1, t2, value

    def entry_count(self) -> int:
        """Number of non-``‖`` entries."""
        return len(self._entries)

    # ------------------------------------------------------------------
    # Lattice structure (pointwise lift of the value lattice)
    # ------------------------------------------------------------------

    def _check_same_universe(self, other: "DependencyFunction") -> None:
        if set(self._tasks) != set(other._tasks):
            raise ValueError("dependency functions over different task sets")

    def leq(self, other: "DependencyFunction") -> bool:
        """Pointwise ``⊑``: self is more specific than (or equal to) other."""
        self._check_same_universe(other)
        for (t1, t2), value in self._entries.items():
            if not lattice.leq(value, other.value(t1, t2)):
                return False
        # Pairs absent from self are ‖, the bottom — always ⊑ anything.
        return True

    def lt(self, other: "DependencyFunction") -> bool:
        """Strict pointwise order."""
        return self.leq(other) and self != other

    def lub(self, other: "DependencyFunction") -> "DependencyFunction":
        """Pointwise least upper bound (the generalization/merge operator)."""
        self._check_same_universe(other)
        entries = dict(self._entries)
        for (t1, t2), value in other._entries.items():
            current = entries.get((t1, t2))
            entries[t1, t2] = value if current is None else lattice.lub(current, value)
        return DependencyFunction(self._tasks, entries)

    def glb(self, other: "DependencyFunction") -> "DependencyFunction":
        """Pointwise greatest lower bound."""
        self._check_same_universe(other)
        entries = {}
        for (t1, t2), value in self._entries.items():
            entries[t1, t2] = lattice.glb(value, other.value(t1, t2))
        return DependencyFunction(self._tasks, entries)

    def weight(self) -> int:
        """Heuristic weight (paper Definition 8).

        Sum over all ordered task pairs of the square distance of the pair's
        value from the lattice bottom. More general hypotheses weigh more.
        """
        return sum(lattice.distance(v) for v in self._entries.values())

    # ------------------------------------------------------------------
    # Equality / hashing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DependencyFunction):
            return NotImplemented
        return (
            set(self._tasks) == set(other._tasks)
            and self._entries == other._entries
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (frozenset(self._tasks), frozenset(self._entries.items()))
            )
        return self._hash

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def to_table(self, unicode_arrows: bool = True) -> str:
        """Render the function as the square table used in the paper.

        Rows are senders, columns receivers; the diagonal shows ``‖``.
        """
        if unicode_arrows:
            display = {
                PARALLEL: "‖",
                lattice.DETERMINES: "→",
                lattice.DEPENDS: "←",
                lattice.MUTUAL: "↔",
                lattice.MAY_DETERMINE: "→?",
                lattice.MAY_DEPEND: "←?",
                lattice.MAY_MUTUAL: "↔?",
            }
        else:
            display = {v: v.value for v in lattice.ALL_VALUES}
        width = max(
            max(len(name) for name in self._tasks),
            max(len(text) for text in display.values()),
        )
        header = " " * (width + 1) + " ".join(n.rjust(width) for n in self._tasks)
        lines = [header]
        for t1 in self._tasks:
            cells = [
                display[self.value(t1, t2)].rjust(width) if t1 != t2 else
                display[PARALLEL].rjust(width)
                for t2 in self._tasks
            ]
            lines.append(t1.rjust(width) + " " + " ".join(cells))
        return "\n".join(lines)

    def to_dict(self) -> dict[tuple[str, str], DepValue]:
        """A plain-dict copy of the non-``‖`` entries."""
        return dict(self._entries)

    def __repr__(self) -> str:
        return (
            f"DependencyFunction(tasks={len(self._tasks)}, "
            f"entries={len(self._entries)}, weight={self.weight()})"
        )


def lub_many(functions: Iterable[DependencyFunction]) -> DependencyFunction:
    """Pointwise LUB of a non-empty collection of dependency functions.

    This is the ``⊔ D*`` operator of the paper's Lemma: the final answer
    reported when the exact algorithm leaves several most-specific
    hypotheses (Section 3.3's ``dLUB``).
    """
    iterator = iter(functions)
    try:
        result = next(iterator)
    except StopIteration:
        raise ValueError("lub_many() requires at least one dependency function")
    for function in iterator:
        result = result.lub(function)
    return result
