"""Pipeline configuration: one dataclass drives every stage.

A :class:`PipelineConfig` is the single value a caller (CLI handler,
script, service endpoint) fills in; the
:class:`~repro.pipeline.engine.LearnPipeline` derives which stages run
from which fields are set. The CLI's argparse namespaces map onto this
1:1, which is what keeps the command handlers thin.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.shardexec import ShardPolicy


@dataclass
class PipelineConfig:
    """Everything a pipeline run needs to know.

    Attributes
    ----------
    source:
        Path of the trace to ingest. ``None`` when the caller passes a
        :class:`~repro.trace.trace.Trace` object directly to ``run()``.
    format:
        Trace-format registry name. ``None`` infers from the source
        path's extension, falling back to the textual log format (the
        rule of :func:`repro.trace.formats.resolve_format`).
    validate:
        Run the validation stage (MOC diagnostics) after ingest.
    tolerance:
        Timing tolerance, used by validation and learning alike.
    learn:
        Run the learning stage. ``False`` for ingest-only flows
        (validate, monitor, coverage).
    bound:
        Hypothesis bound for learning; ``None`` selects the exact
        algorithm (sequential only).
    workers:
        Shard-parallel learning fan-out; requires a bound when > 1
        (see :mod:`repro.core.sharded`). With a ``scheduler`` set this
        is also the number of remote worker daemons the coordinator
        waits for before dispatching.
    scheduler:
        ``tcp://HOST:PORT`` address to coordinate remote ``repro
        worker`` daemons on, or ``None`` (the default) for local
        process pools. Requires ``workers > 1`` and a bound. When the
        trace source is a ``.rts`` store, its content fingerprint is
        sent to every worker, and workers whose store at the same path
        differs refuse the session (the shard tasks ship ``(path,
        start, stop)`` handles, so all machines must see the same store
        at the same absolute path). The CLI's ``--scheduler`` flag maps
        onto this field.
    shard_policy:
        Fault-tolerance policy for shard-parallel learning — per-shard
        timeout, retry/split budgets, and the degradation mode when the
        process pool is irrecoverable (see
        :class:`~repro.core.shardexec.ShardPolicy`). ``None`` uses the
        defaults; ignored when ``workers`` is 1. The CLI's
        ``--shard-timeout`` / ``--shard-retries`` / ``--degrade`` flags
        map onto this field.
    max_hypotheses:
        Safety cap for the exact algorithm.
    kernel:
        Mask-kernel backend for the learn stage: ``"loop"``, ``"batch"``,
        or ``"auto"`` (the default — batch when numpy is importable; see
        :func:`repro.core.batch.resolve_kernel`). The backends learn
        bit-for-bit identical models. The CLI's ``--kernel`` flag maps
        onto this field.
    analyze_modes / analyze_curve:
        Run the analysis stage's mode extraction / learning-curve parts.
    curve_bound:
        Bound used by the learning-curve analysis.
    model_path:
        Saved model JSON to monitor the trace against (drift stage).
    design_path:
        Design spec JSON to measure trace coverage against.
    dot / graphml / model_json / report:
        Report-stage output paths; any non-``None`` value enables the
        report stage (which requires the learn stage).
    profile_json:
        Path to write the run's machine-readable profile to (per-stage
        wall clock plus the learner's hot-loop counters; see
        :meth:`~repro.pipeline.engine.PipelineRun.profile`). Written by
        :meth:`~repro.pipeline.engine.LearnPipeline.run` after the last
        stage.
    """

    source: str | None = None
    format: str | None = None
    validate: bool = False
    tolerance: float = 0.0
    learn: bool = True
    bound: int | None = None
    workers: int = 1
    scheduler: str | None = None
    shard_policy: ShardPolicy | None = None
    max_hypotheses: int = 2_000_000
    kernel: str = "auto"
    analyze_modes: bool = False
    analyze_curve: bool = False
    curve_bound: int = 16
    model_path: str | None = None
    design_path: str | None = None
    dot: str | None = None
    graphml: str | None = None
    model_json: str | None = None
    report: str | None = None
    profile_json: str | None = None

    @classmethod
    def for_session(
        cls,
        *,
        format: str | None = None,
        bound: int | None = None,
        tolerance: float = 0.0,
        kernel: str = "auto",
    ) -> "PipelineConfig":
        """Session-mode configuration for the streaming service.

        A live session (:mod:`repro.service`) is a learn-only pipeline
        with no source path: periods arrive over the wire instead of
        from a file, so ingest/report stages stay off and sharding stays
        local (a session holds exactly one incremental learner). The
        service derives each session's learner settings from this config
        so a session and a ``repro learn`` run over the same fields are
        the same computation — which is what the byte-identity tests
        assert.
        """
        return cls(
            source=None,
            format=format,
            learn=True,
            bound=bound,
            tolerance=tolerance,
            kernel=kernel,
        )

    def report_outputs(self) -> list[tuple[str, str]]:
        """The configured ``(kind, path)`` report outputs, in write order."""
        outputs = []
        for kind in ("dot", "graphml", "model_json", "report"):
            path = getattr(self, kind)
            if path is not None:
                outputs.append((kind, path))
        return outputs

    def stages(self) -> tuple[str, ...]:
        """The stage names this configuration enables, in run order."""
        names = ["ingest"]
        if self.validate:
            names.append("validate")
        if self.learn:
            names.append("learn")
        if self.analyze_modes or self.analyze_curve:
            names.append("analyze")
        if self.model_path is not None:
            names.append("monitor")
        if self.design_path is not None:
            names.append("coverage")
        if self.report_outputs():
            names.append("report")
        return tuple(names)


__all__ = ["PipelineConfig"]
