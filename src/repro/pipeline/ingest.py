"""Bounded-memory ingestion into the columnar trace store.

``repro ingest <log> -o trace.rts`` and ``repro store-info trace.rts``
are thin CLI shells over this module, the same way the other commands
shell over :mod:`repro.pipeline.engine`. Two entry points:

* :func:`ingest_to_store` converts any registered
  :class:`~repro.trace.formats.TraceFormat` — or a candump CAN log —
  into a ``.rts`` store, streaming period by period through a
  :class:`~repro.trace.store.TraceStoreWriter` so peak memory is bounded
  by the largest single period regardless of log size. candump logs
  have no period structure of their own, so they are segmented on the
  fly by a fixed period length (events bucketed by
  ``floor(time / period_length)``, empty interior buckets preserved —
  the same rule as :meth:`~repro.trace.trace.Trace.from_events`).
* :func:`store_info` returns a finalized store's header facts without
  touching the column data (the header is a few hundred bytes at the
  front of the file; the mmap never faults in the columns).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import ReproError, TraceError
from repro.trace.canlog import CanLogConfig, iter_canlog_events
from repro.trace.events import Event
from repro.trace.formats import resolve_format
from repro.trace.store import TraceStoreWriter, open_store

#: The ingest-only pseudo-format for candump CAN logs (candump is a flat
#: event stream, not a period format, so it is not in the trace-format
#: registry; ingestion is where it gains period structure).
CANLOG_FORMAT = "canlog"

#: Extensions that select candump ingestion when no format is named.
CANLOG_EXTENSIONS = (".canlog", ".candump")


@dataclass(frozen=True)
class IngestSummary:
    """What one ingest run wrote."""

    path: str
    format: str
    periods: int
    events: int
    messages: int
    bytes: int

    def summary(self) -> str:
        return (
            f"ingested {self.periods} periods / {self.events} events "
            f"({self.messages} messages) from {self.format} into "
            f"{self.path} ({self.bytes} bytes)"
        )


def _segment_events(
    events: Iterable[Event], period_length: float
) -> Iterator[list[Event]]:
    """Bucket a time-ordered flat event stream into period event lists.

    Empty interior buckets yield empty lists (they become empty periods,
    keeping period indices aligned with wall-clock time); out-of-order
    buckets raise :class:`~repro.errors.TraceError`, since a
    bounded-memory pass cannot re-sort the log.
    """
    if period_length <= 0:
        raise TraceError("period_length must be positive")
    bucket: int | None = None
    current: list[Event] = []
    for event in events:
        target = int(event.time // period_length)
        if bucket is None:
            bucket = target
        elif target < bucket:
            raise TraceError(
                "candump ingestion requires a time-ordered log: event at "
                f"{event.time} falls before period {bucket}"
            )
        while bucket < target:
            yield current
            current = []
            bucket += 1
        current.append(event)
    if bucket is not None:
        yield current


def ingest_to_store(
    source: str,
    out: str,
    format: str | None = None,
    period_length: float | None = None,
    can_config: CanLogConfig | None = None,
    message_labels: dict[int, str] | None = None,
) -> IngestSummary:
    """Stream *source* into a ``.rts`` store at *out*, bounded memory.

    *format* is a trace-format registry name or :data:`CANLOG_FORMAT`;
    ``None`` infers candump from a ``.canlog``/``.candump`` extension
    and otherwise defers to :func:`~repro.trace.formats.resolve_format`.
    candump ingestion needs *can_config* (task instrumentation ids) and
    an explicit *period_length* — a single bounded-memory pass cannot
    infer the period first; infer it separately with
    :func:`repro.trace.periodize.infer_period_from_times` if unknown.
    """
    extension = os.path.splitext(source)[1].lower()
    if format == CANLOG_FORMAT or (
        format is None and extension in CANLOG_EXTENSIONS
    ):
        if can_config is None:
            can_config = CanLogConfig()
        if period_length is None:
            raise ReproError(
                "candump ingestion requires --period-length: the log is a "
                "flat event stream with no period structure of its own"
            )
        tasks = tuple(
            can_config.task_names[byte]
            for byte in sorted(can_config.task_names)
        )
        writer = TraceStoreWriter(out, tasks)
        try:
            with open(source, "r", encoding="utf-8") as stream:
                events = iter_canlog_events(stream, can_config, message_labels)
                for period_events in _segment_events(events, period_length):
                    writer.add_period(period_events)
        except BaseException:
            writer.abort()
            raise
        store = writer.finalize()
        format_name = CANLOG_FORMAT
    else:
        fmt = resolve_format(format, source)
        if fmt.name == "store":
            raise ReproError(
                f"{source} is already a trace store; copy the file instead "
                "of re-ingesting it"
            )
        tasks, periods = fmt.open_periods(source)
        writer = TraceStoreWriter(out, tasks)
        try:
            for period in periods:
                writer.add_period(period)
        except BaseException:
            writer.abort()
            raise
        store = writer.finalize()
        format_name = fmt.name
    return IngestSummary(
        path=store.path,
        format=format_name,
        periods=store.period_count,
        events=store.event_count,
        messages=store.message_count,
        bytes=store.info()["bytes"],
    )


def store_info(path: str) -> dict:
    """A finalized store's header facts (see :meth:`TraceStore.info`)."""
    return open_store(path).info()


__all__ = [
    "CANLOG_EXTENSIONS",
    "CANLOG_FORMAT",
    "IngestSummary",
    "ingest_to_store",
    "store_info",
]
