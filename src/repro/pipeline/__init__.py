"""Staged learn pipeline: config-driven composition of the library flow.

* :mod:`repro.pipeline.config` — :class:`PipelineConfig`, the single
  dataclass that decides which stages run;
* :mod:`repro.pipeline.engine` — :class:`LearnPipeline` and the
  :class:`PipelineRun` context it threads through the stages;
* :mod:`repro.pipeline.ingest` — bounded-memory conversion of trace
  logs into the columnar ``.rts`` store (``repro ingest``) and store
  header inspection (``repro store-info``).

The CLI's command handlers are thin adapters over this package: each
subcommand builds a :class:`PipelineConfig` from its argparse namespace
and formats the resulting :class:`PipelineRun`.
"""

from repro.pipeline.config import PipelineConfig
from repro.pipeline.engine import (
    LearnPipeline,
    PipelineRun,
    StageTiming,
    run_pipeline,
)
from repro.pipeline.ingest import IngestSummary, ingest_to_store, store_info

__all__ = [
    "PipelineConfig",
    "LearnPipeline",
    "PipelineRun",
    "StageTiming",
    "run_pipeline",
    "IngestSummary",
    "ingest_to_store",
    "store_info",
]
