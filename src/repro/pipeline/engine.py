"""The staged learn pipeline.

:class:`LearnPipeline` composes the library's end-to-end flow out of
explicit, individually-timed stages::

    ingest -> validate -> learn -> analyze -> monitor -> coverage -> report

Which stages run is derived from the :class:`~repro.pipeline.config.
PipelineConfig` (``config.stages()``); each stage reads and writes one
shared :class:`PipelineRun` context and appends a :class:`StageTiming`
to ``run.timings``. The timings compose with the learners' existing
:class:`~repro.core.instrumentation.HotLoopCounters`: the learn stage's
wall-clock row sits above the hot loop's per-phase seconds, so one table
(:meth:`PipelineRun.timing_rows`) spans the whole run from file ingest
down to the inner message loop.

Stage errors propagate as :class:`~repro.errors.ReproError` (or
``OSError`` for file problems), which the CLI maps to exit code 2.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ReproError
from repro.pipeline.config import PipelineConfig
from repro.trace.formats import resolve_format
from repro.trace.trace import Trace
from repro.trace.validate import Severity, validate_trace

StageHook = Callable[["StageTiming", "PipelineRun"], None]


@dataclass(frozen=True)
class StageTiming:
    """One completed stage: its name and wall-clock duration."""

    name: str
    seconds: float


@dataclass
class PipelineRun:
    """Mutable context threaded through the stages of one pipeline run.

    Stages fill in the fields they own; later stages read earlier
    fields. After :meth:`LearnPipeline.run` returns, this is the
    complete record of what happened.
    """

    config: PipelineConfig
    trace: Trace | None = None
    format: str | None = None
    diagnostics: Sequence = ()
    result: object = None
    model: object = None
    modes: object = None
    curve: object = None
    drift: object = None
    coverage: object = None
    written: list[tuple[str, str]] = field(default_factory=list)
    timings: list[StageTiming] = field(default_factory=list)

    @property
    def validation_errors(self) -> list:
        """ERROR-severity diagnostics from the validate stage."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def stage_seconds(self, name: str) -> float:
        """Total wall-clock seconds spent in the named stage."""
        return sum(t.seconds for t in self.timings if t.name == name)

    def timing_rows(self) -> list[tuple[str, float]]:
        """``(label, seconds)`` rows: stage wall clock, then — directly
        under the learn stage — the hot loop's per-phase seconds, so the
        pipeline view and the learner's own instrumentation read as one
        breakdown."""
        rows: list[tuple[str, float]] = []
        hot = getattr(self.result, "hot_loop", None)
        for timing in self.timings:
            rows.append((timing.name, timing.seconds))
            if timing.name == "learn" and hot is not None:
                rows.append(("  hot loop: stats update", hot.stats_seconds))
                rows.append(("  hot loop: weight refresh", hot.refresh_seconds))
                rows.append(
                    ("  hot loop: message processing", hot.process_seconds)
                )
                rows.append(("  hot loop: post-processing", hot.post_seconds))
        return rows

    def timing_summary(self) -> str:
        """The timing rows as an aligned text block."""
        rows = self.timing_rows()
        if not rows:
            return "(no stages ran)"
        width = max(len(label) for label, _ in rows)
        return "\n".join(
            f"{label.ljust(width)}  {seconds:.6f}s" for label, seconds in rows
        )

    def profile(self) -> dict:
        """The run's performance profile as a JSON-ready dictionary.

        Machine-readable twin of :meth:`timing_summary`: per-stage wall
        clock in run order, the learner's hot-loop counters and phase
        seconds (when the learn stage ran), and the headline run facts
        (periods, messages, peak pool size, workers). This is what
        ``repro learn --profile-json PATH`` writes.
        """
        data: dict = {
            "stages": [
                {"name": t.name, "seconds": t.seconds} for t in self.timings
            ],
            "total_seconds": sum(t.seconds for t in self.timings),
        }
        result = self.result
        if result is not None:
            data["learn"] = {
                "algorithm": getattr(result, "algorithm", None),
                "bound": getattr(result, "bound", None),
                "workers": getattr(result, "workers", 1),
                "kernel": getattr(result, "kernel", "loop"),
                "periods": getattr(result, "periods", None),
                "messages": getattr(result, "messages", None),
                "peak_hypotheses": getattr(result, "peak_hypotheses", None),
                "merge_count": getattr(result, "merge_count", None),
                "elapsed_seconds": getattr(result, "elapsed_seconds", None),
            }
            if self.config.scheduler is not None:
                data["learn"]["scheduler"] = self.config.scheduler
            policy = self.config.shard_policy
            if policy is not None:
                data["learn"]["shard_policy"] = {
                    "timeout": policy.timeout,
                    "retries": policy.retries,
                    "max_splits": policy.max_splits,
                    "max_pool_rebuilds": policy.max_pool_rebuilds,
                    "degrade": policy.degrade,
                }
            hot = getattr(result, "hot_loop", None)
            if hot is not None:
                data["hot_loop"] = hot.as_dict()
        return data


class LearnPipeline:
    """Compose and run the stages a :class:`PipelineConfig` enables.

    >>> from repro.trace.synthetic import paper_figure2_trace
    >>> pipe = LearnPipeline(PipelineConfig(bound=4))
    >>> run = pipe.run(paper_figure2_trace())
    >>> [t.name for t in run.timings]
    ['ingest', 'learn']
    >>> run.result.algorithm
    'heuristic'
    """

    #: Run order; ``config.stages()`` selects a subsequence of these.
    STAGE_ORDER = (
        "ingest",
        "validate",
        "learn",
        "analyze",
        "monitor",
        "coverage",
        "report",
    )

    def __init__(
        self,
        config: PipelineConfig,
        on_stage: StageHook | None = None,
    ) -> None:
        self.config = config
        self.on_stage = on_stage
        stages = config.stages()
        unknown = set(stages) - set(self.STAGE_ORDER)
        if unknown:
            raise ReproError(
                f"unknown pipeline stage(s): {', '.join(sorted(unknown))}"
            )
        if "report" in stages and "learn" not in stages:
            raise ReproError("the report stage requires the learn stage")
        self.stages = stages

    def run(self, trace: Trace | None = None) -> PipelineRun:
        """Execute the configured stages; *trace* skips file ingest."""
        run = PipelineRun(config=self.config, trace=trace)
        for name in self.stages:
            stage = getattr(self, f"_stage_{name}")
            started = time.perf_counter()
            stage(run)
            timing = StageTiming(name, time.perf_counter() - started)
            run.timings.append(timing)
            if self.on_stage is not None:
                self.on_stage(timing, run)
        if self.config.profile_json is not None:
            with open(self.config.profile_json, "w", encoding="utf-8") as f:
                json.dump(run.profile(), f, indent=2)
                f.write("\n")
        return run

    # -- stages ----------------------------------------------------------

    def _stage_ingest(self, run: PipelineRun) -> None:
        config = self.config
        if run.trace is not None:
            run.format = config.format
            return
        if config.source is None:
            raise ReproError(
                "pipeline has no trace: set PipelineConfig.source or pass "
                "a Trace to run()"
            )
        fmt = resolve_format(config.format, config.source)
        run.format = fmt.name
        run.trace = fmt.read(config.source)

    def _stage_validate(self, run: PipelineRun) -> None:
        run.diagnostics = validate_trace(
            run.trace, tolerance=self.config.tolerance
        )

    def _stage_learn(self, run: PipelineRun) -> None:
        from repro.core.learner import learn_dependencies

        config = self.config
        factory = self._make_executor_factory(run)
        try:
            run.result = learn_dependencies(
                run.trace,
                bound=config.bound,
                tolerance=config.tolerance,
                max_hypotheses=config.max_hypotheses,
                workers=config.workers,
                shard_policy=config.shard_policy,
                kernel=config.kernel,
                executor_factory=factory,
            )
        finally:
            if factory is not None:
                factory.close()
        run.model = run.result.lub()

    def _make_executor_factory(self, run: PipelineRun):
        """The distributed executor factory, when a scheduler is set.

        Learning from a ``.rts`` store sends the store's fingerprint in
        the handshake so every worker proves it sees the same bytes at
        the same absolute path before any shard is dispatched.
        """
        config = self.config
        if config.scheduler is None:
            return None
        if config.workers < 2 or config.bound is None:
            raise ReproError(
                "--scheduler requires --workers >= 2 and a --bound: "
                "remote dispatch is only defined for sharded bounded "
                "learning"
            )
        from repro.distributed import TcpExecutorFactory, store_fingerprint

        store = None
        if run.format == "store" and config.source is not None:
            store = store_fingerprint(config.source)
        return TcpExecutorFactory(
            config.scheduler, workers=config.workers, store=store
        )

    def _stage_analyze(self, run: PipelineRun) -> None:
        config = self.config
        if config.analyze_modes:
            from repro.analysis.modes import extract_modes

            run.modes = extract_modes(run.trace)
        if config.analyze_curve:
            from repro.analysis.convergence import learning_curve

            run.curve = learning_curve(run.trace, bound=config.curve_bound)

    def _stage_monitor(self, run: PipelineRun) -> None:
        from repro.analysis.drift import DriftMonitor
        from repro.analysis.report import loads_model

        config = self.config
        with open(config.model_path, "r", encoding="utf-8") as stream:
            model = loads_model(stream.read())
        monitor = DriftMonitor(model, tolerance=config.tolerance)
        run.drift = monitor.observe_all(run.trace.periods)

    def _stage_coverage(self, run: PipelineRun) -> None:
        from repro.analysis.coverage import coverage
        from repro.systems.specio import load_design

        with open(self.config.design_path, "r", encoding="utf-8") as stream:
            design = load_design(stream)
        run.coverage = coverage(run.trace, design)

    def _stage_report(self, run: PipelineRun) -> None:
        from repro.analysis.graph import DependencyGraph
        from repro.analysis.report import dumps_model, markdown_report, to_graphml

        renderers = {
            "dot": lambda: DependencyGraph(run.model).to_dot(),
            "graphml": lambda: to_graphml(run.model),
            "model_json": lambda: dumps_model(run.model),
            "report": lambda: markdown_report(run.result),
        }
        for kind, path in self.config.report_outputs():
            with open(path, "w", encoding="utf-8") as stream:
                stream.write(renderers[kind]())
            run.written.append((kind, path))


def run_pipeline(
    config: PipelineConfig,
    trace: Trace | None = None,
    on_stage: StageHook | None = None,
) -> PipelineRun:
    """One-call convenience: build a :class:`LearnPipeline` and run it."""
    return LearnPipeline(config, on_stage=on_stage).run(trace)


__all__ = [
    "StageTiming",
    "PipelineRun",
    "LearnPipeline",
    "run_pipeline",
]
