"""Statistical baseline: co-occurrence correlation of task executions.

A purely statistical take on dependency inference — compute, for every
ordered task pair, the phi coefficient of their per-period execution
indicators, and call strongly correlated pairs dependent. Direction is
assigned by mean start-time order (the earlier task "determines" the
later one).

This is what a data scientist without the paper's model of computation
would build first. The comparison against the message-guided learner
(experiment E3's baseline table and
``tests/test_correlation_baseline.py``) shows its blind spots:

* constant tasks (always running) have undefined correlation — the
  backbone of the system is invisible;
* correlation is symmetric and confounded by common causes, so branch
  siblings appear dependent;
* it cannot distinguish data flow from coincidental co-activation.
"""

from __future__ import annotations

import numpy as np

from repro.core.depfunc import DependencyFunction
from repro.core.lattice import (
    DEPENDS,
    DETERMINES,
    DepValue,
    MAY_DEPEND,
    MAY_DETERMINE,
    lub,
)
from repro.trace.trace import Trace


def execution_matrix(trace: Trace) -> np.ndarray:
    """Binary matrix: rows = periods, columns = tasks (execution flags)."""
    tasks = trace.tasks
    matrix = np.zeros((len(trace), len(tasks)), dtype=float)
    index = {task: column for column, task in enumerate(tasks)}
    for row, period in enumerate(trace.periods):
        for task in period.executed_tasks:
            matrix[row, index[task]] = 1.0
    return matrix


def phi_coefficient(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation of two binary vectors (phi); NaN if constant."""
    if x.std() == 0 or y.std() == 0:
        return float("nan")
    return float(np.corrcoef(x, y)[0, 1])


def mine_by_correlation(
    trace: Trace, threshold: float = 0.6
) -> DependencyFunction:
    """Infer a dependency function from execution correlations.

    Pairs with ``|phi| >= threshold`` (or perfect co-execution of
    non-constant tasks) get a probable arrow from the earlier-starting
    task to the later one; certainty is granted when co-execution is
    perfect in the observed trace.
    """
    matrix = execution_matrix(trace)
    tasks = trace.tasks
    mean_starts: dict[str, float] = {}
    for task in tasks:
        starts = [
            period.execution_of(task).start - period.start_time()
            for period in trace.periods
            if period.executed(task)
        ]
        mean_starts[task] = sum(starts) / len(starts) if starts else 0.0

    entries: dict[tuple[str, str], DepValue] = {}
    for i, a in enumerate(tasks):
        for j, b in enumerate(tasks):
            if j <= i:
                continue
            x, y = matrix[:, i], matrix[:, j]
            # Constant columns (always-on or never-on tasks) have no
            # variance: statistically invisible — the documented blind spot.
            if x.std() == 0 or y.std() == 0:
                continue
            phi = phi_coefficient(x, y)
            if not abs(phi) >= threshold:  # NaN-safe
                continue
            together_always = bool(np.all(x == y))
            first, second = (a, b) if mean_starts[a] <= mean_starts[b] else (b, a)
            forward = DETERMINES if together_always else MAY_DETERMINE
            backward = DEPENDS if together_always else MAY_DEPEND
            entries[first, second] = lub(
                entries.get((first, second), forward), forward
            )
            entries[second, first] = lub(
                entries.get((second, first), backward), backward
            )
    return DependencyFunction(tasks, entries)
