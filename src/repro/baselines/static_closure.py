"""Static design analysis baseline: syntactic transitive closure.

This is the "merely looking at the original model" analysis the paper
contrasts against at the end of Section 3.3: walk the design graph and
propagate certainty syntactically —

* a path made only of unconditional edges through always-executing tasks
  yields a certain dependency (``→``/``←``);
* any path touching a conditional edge yields only a probable one
  (``→?``/``←?``).

Unlike the behavior-aware ground truth
(:func:`repro.systems.semantics.ground_truth_dependencies`), this analysis
cannot see that *all* branch alternatives converge: for Figure 1 it
reports ``d(t1, t4) = →?`` where both the behavior-aware truth and the
learner prove ``→``. That gap is precisely the paper's argument for
learning over static inspection.
"""

from __future__ import annotations

from repro.core.depfunc import DependencyFunction
from repro.core.lattice import (
    DEPENDS,
    DETERMINES,
    DepValue,
    MAY_DEPEND,
    MAY_DETERMINE,
    PARALLEL,
    lub,
)
from repro.systems.model import SystemDesign


def _certain_reachability(design: SystemDesign) -> dict[str, dict[str, bool]]:
    """``reach[a][b]`` = True for an all-unconditional path, False for a
    path involving a conditional edge, absent for no path."""
    reach: dict[str, dict[str, bool]] = {name: {} for name in design.task_names}
    for name in reversed(design.topological_order()):
        table = reach[name]
        for edge in design.out_edges(name):
            certain_hop = not edge.conditional
            table[edge.receiver] = table.get(edge.receiver, False) or certain_hop
            for target, certain_rest in reach[edge.receiver].items():
                certain_path = certain_hop and certain_rest
                table[target] = table.get(target, False) or certain_path
    return reach


def _always_executes(design: SystemDesign) -> frozenset[str]:
    """Tasks that run every period, syntactically.

    Sources always run; a task with an unconditional in-edge from an
    always-running task runs too. This under-approximates the behavioral
    truth (it cannot see converging branches), which is exactly the
    blindness the paper attributes to static inspection.
    """
    always: set[str] = set()
    for name in design.topological_order():
        spec = design.task(name)
        if spec.is_source or any(
            not edge.conditional and edge.sender in always
            for edge in design.in_edges(name)
        ):
            always.add(name)
    return frozenset(always)


def static_dependencies(design: SystemDesign) -> DependencyFunction:
    """The syntactic-closure dependency function of *design*.

    Forward certainty needs an all-unconditional path (the sender's own
    execution then forces the receiver's). Backward certainty additionally
    needs the dependee to always execute: ``d(a, b) = ←`` claims *b* ran
    whenever *a* did, which syntax can only guarantee when *b* runs every
    period.
    """
    reach = _certain_reachability(design)
    always = _always_executes(design)
    entries: dict[tuple[str, str], DepValue] = {}
    for a in design.task_names:
        for b in design.task_names:
            if a == b:
                continue
            value = PARALLEL
            if b in reach[a]:
                value = lub(
                    value, DETERMINES if reach[a][b] else MAY_DETERMINE
                )
            if a in reach[b]:
                certain = reach[b][a] and b in always
                value = lub(value, DEPENDS if certain else MAY_DEPEND)
            if value is not PARALLEL:
                entries[a, b] = value
    return DependencyFunction(design.task_names, entries)
