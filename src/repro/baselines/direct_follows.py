"""Process-mining baseline: direct-follows ordering inference.

Classic process-discovery tools (the alpha-algorithm family) infer task
orderings from activity logs alone, ignoring message traffic. This
baseline applies that idea to our traces for comparison with the paper's
message-guided learner:

* within each period, task executions are ordered by start time;
* ``a > b`` (direct succession) when ``b``'s execution is the next one to
  start after ``a`` ends;
* ``a`` *causes* ``b`` when ``a > b`` and never ``b > a``;
* tasks observed in both orders (or overlapping) are *parallel*.

The result is mapped into the paper's value lattice so the two approaches
are directly comparable: causality with universal co-execution becomes
``→``, with partial co-execution ``→?``, and everything else ``‖``. The
baseline has no notion of message evidence, so it cannot distinguish
coincidental scheduling order from data dependency — the comparison in
experiment E3 quantifies the difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.depfunc import DependencyFunction
from repro.core.lattice import (
    DEPENDS,
    DETERMINES,
    DepValue,
    MAY_DEPEND,
    MAY_DETERMINE,
    lub,
)
from repro.trace.trace import Trace


@dataclass
class DirectFollowsCounts:
    """Raw succession and co-execution statistics."""

    follows: dict[tuple[str, str], int] = field(default_factory=dict)
    coexecuted: dict[tuple[str, str], int] = field(default_factory=dict)
    executed: dict[str, int] = field(default_factory=dict)
    overlapped: set[tuple[str, str]] = field(default_factory=set)
    periods: int = 0

    def bump(self, table: dict, key, amount: int = 1) -> None:
        table[key] = table.get(key, 0) + amount


def count_direct_follows(trace: Trace) -> DirectFollowsCounts:
    """Scan *trace* and accumulate ordering statistics."""
    counts = DirectFollowsCounts()
    for period in trace.periods:
        counts.periods += 1
        executions = sorted(period.executions, key=lambda e: (e.start, e.task))
        for execution in executions:
            counts.bump(counts.executed, execution.task)
        for first, second in zip(executions, executions[1:]):
            if second.start >= first.end:
                counts.bump(counts.follows, (first.task, second.task))
        for i, first in enumerate(executions):
            for second in executions[i + 1:]:
                counts.bump(counts.coexecuted, (first.task, second.task))
                counts.bump(counts.coexecuted, (second.task, first.task))
                if second.start < first.end:
                    counts.overlapped.add((first.task, second.task))
                    counts.overlapped.add((second.task, first.task))
    return counts


def mine_dependencies(trace: Trace) -> DependencyFunction:
    """Run the direct-follows baseline over *trace*."""
    counts = count_direct_follows(trace)
    entries: dict[tuple[str, str], DepValue] = {}
    tasks = trace.tasks
    for a in tasks:
        for b in tasks:
            if a == b:
                continue
            ab = counts.follows.get((a, b), 0)
            ba = counts.follows.get((b, a), 0)
            causal = ab > 0 and ba == 0 and (a, b) not in counts.overlapped
            if not causal:
                continue
            # a always "determines" b only if b ran in every period a did.
            runs_a = counts.executed.get(a, 0)
            together = counts.coexecuted.get((a, b), 0)
            certain_forward = runs_a > 0 and together == runs_a
            runs_b = counts.executed.get(b, 0)
            certain_backward = runs_b > 0 and together == runs_b
            forward = DETERMINES if certain_forward else MAY_DETERMINE
            backward = DEPENDS if certain_backward else MAY_DEPEND
            entries[a, b] = lub(entries.get((a, b), forward), forward)
            entries[b, a] = lub(entries.get((b, a), backward), backward)
    return DependencyFunction(tasks, entries)
