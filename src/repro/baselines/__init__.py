"""Comparison baselines: direct-follows mining, static closure, correlation."""

from repro.baselines.correlation import (
    execution_matrix,
    mine_by_correlation,
    phi_coefficient,
)
from repro.baselines.direct_follows import (
    DirectFollowsCounts,
    count_direct_follows,
    mine_dependencies,
)
from repro.baselines.static_closure import static_dependencies

__all__ = [
    "DirectFollowsCounts",
    "count_direct_follows",
    "mine_dependencies",
    "static_dependencies",
    "mine_by_correlation",
    "execution_matrix",
    "phi_coefficient",
]
