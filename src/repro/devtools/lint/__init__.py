"""repro-lint: AST-based invariant checker for this codebase.

The bitmask kernel and the learning pipeline rest on invariants the
test suite can only *sample* — bit-for-bit deterministic output,
string-free hot loops, a hard string boundary around ``repro.core``,
picklable shard submissions, docstring citations that resolve into
``DESIGN.md``, and a raw-column boundary around the mmap trace store.
This package proves them statically on every commit:

========  =============================================================
RL001     deterministic iteration on output paths (no unsorted sets)
RL002     hot-loop purity in ``@hot_loop``-marked kernel functions
RL003     mask/``PairSet`` internals never leave ``repro.core``
RL004     process-pool submissions are picklable (no lambdas/closures)
RL005     ``Definition N``/``Theorem N``/``Lemma`` citations resolve
RL006     raw store columns/mmap stay inside ``repro.trace.columnar``
          and ``repro.trace.store``
========  =============================================================

Findings are suppressed per line with ``# repro-lint: ignore[RL00x]``
(see :mod:`repro.devtools.lint.suppressions` for the policy). Run via
``repro lint``, ``python -m repro.devtools.lint``, or ``make lint``.
"""

from repro.devtools.lint.engine import (
    lint_file,
    lint_paths,
    lint_source,
)
from repro.devtools.lint.findings import Finding, LintReport
from repro.devtools.lint.registry import Rule, all_rules, get_rule

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_paths",
    "lint_source",
]
