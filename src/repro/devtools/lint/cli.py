"""Command-line front end of repro-lint.

Runs standalone (``python -m repro.devtools.lint``) and behind the main
CLI (``repro lint``); both parse the same flags and share
:func:`run_lint` so behavior cannot drift::

    repro lint src/repro                    # human output, exit 1 on findings
    repro lint src/repro --json report.json # + machine-readable artifact
    repro lint --changed                    # only files changed vs merge-base
    repro lint --list-rules                 # rule codes + invariants

Exit codes: 0 clean, 1 unsuppressed findings, 2 usage or I/O error.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import Sequence, TextIO

from repro.devtools.lint.engine import lint_paths
from repro.devtools.lint.registry import all_rules

DEFAULT_PATHS = ("src/repro",)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared flag set (also mounted under ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro; with "
        "--changed, the scope the changed files are filtered against)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the full report (findings + suppressions) as JSON",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only files changed vs the git merge-base (fast local runs)",
    )
    parser.add_argument(
        "--base",
        default=None,
        metavar="REF",
        help="merge-base reference for --changed (default: origin/main, "
        "falling back to main)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print rule codes and the invariant each protects, then exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print only the summary line",
    )


def _git_lines(args: Sequence[str]) -> list[str] | None:
    try:
        proc = subprocess.run(
            ["git", *args],
            capture_output=True,
            text=True,
            check=False,
        )
    except OSError:
        return None
    if proc.returncode != 0:
        return None
    return [line for line in proc.stdout.splitlines() if line.strip()]


def changed_files(base: str | None = None) -> list[Path] | None:
    """Python files changed vs the merge-base with *base* (plus untracked).

    Returns None when git is unavailable or no base ref resolves, so the
    caller can fall back to a full run with a warning.
    """
    candidates = [base] if base else ["origin/main", "main"]
    merge_base: str | None = None
    for ref in candidates:
        lines = _git_lines(["merge-base", "HEAD", ref])
        if lines:
            merge_base = lines[0]
            break
    if merge_base is None:
        return None
    changed = _git_lines(["diff", "--name-only", merge_base, "--"])
    untracked = _git_lines(["ls-files", "--others", "--exclude-standard"])
    if changed is None or untracked is None:
        return None
    return [
        Path(name)
        for name in sorted(set(changed) | set(untracked))
        if name.endswith(".py")
    ]


def _scoped(files: Sequence[Path], scopes: Sequence[str]) -> list[Path]:
    scope_paths = [Path(scope).resolve() for scope in scopes]
    kept = []
    for file in files:
        resolved = file.resolve()
        for scope in scope_paths:
            if resolved == scope or scope in resolved.parents:
                kept.append(file)
                break
    return kept


def run_lint(args: argparse.Namespace, out: TextIO) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        for rule in all_rules():
            out.write(f"{rule.code} {rule.name}\n    {rule.invariant}\n")
        return 0
    scopes = list(args.paths) or list(DEFAULT_PATHS)
    if args.changed:
        files = changed_files(args.base)
        if files is None:
            out.write(
                "repro-lint: --changed could not resolve a merge-base; "
                "linting the full scope\n"
            )
            targets: list[str | Path] = list(scopes)
        else:
            targets = list(_scoped([f for f in files if f.exists()], scopes))
    else:
        targets = list(scopes)
        for scope in scopes:
            if not Path(scope).exists():
                out.write(f"repro-lint: no such path: {scope}\n")
                return 2
    report = lint_paths(targets)
    if args.json:
        try:
            Path(args.json).write_text(
                report.to_json() + "\n", encoding="utf-8"
            )
        except OSError as error:
            out.write(f"repro-lint: cannot write {args.json}: {error}\n")
            return 2
    if args.quiet:
        out.write(report.render().splitlines()[-1] + "\n")
    else:
        out.write(report.render() + "\n")
    return 1 if report.active else 0


def main(
    argv: Sequence[str] | None = None, out: TextIO | None = None
) -> int:
    """Standalone entry point (``python -m repro.devtools.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant checker for the repro codebase "
        "(determinism, hot-loop purity, mask boundary, shard safety, "
        "paper anchors)",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return run_lint(args, out if out is not None else sys.stdout)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
