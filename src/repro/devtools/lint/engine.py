"""The lint engine: file discovery, parsing, rule dispatch, suppression.

The engine is deliberately dependency-free (stdlib ``ast`` + ``tokenize``)
so it runs anywhere the repository checks out — CI, a contributor's
laptop, a pre-commit hook — without the production package installed.

Entry points:

:func:`lint_paths`
    Lint files and directories (directories recurse over ``*.py``) and
    return a :class:`~repro.devtools.lint.findings.LintReport`.

:func:`lint_source`
    Lint one in-memory source string — the unit-test surface: rule
    fixtures pass a snippet, a fake module name, and (for RL005) an
    explicit anchor set.

Paper anchors for RL005 are harvested from the nearest ``DESIGN.md``
found walking up from each linted file; the harvest is cached per
DESIGN.md path so a whole-tree run reads it once.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.lint.findings import Finding, LintReport
from repro.devtools.lint.registry import ModuleContext, Rule, all_rules
from repro.devtools.lint.rules import rl005_anchors  # noqa: F401  (registers rules)
from repro.devtools.lint.suppressions import scan_suppressions

#: Directory names never descended into.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".pytest_cache", "build", "dist"})


def module_name_for(path: Path) -> str:
    """The dotted module name of *path*, best effort.

    Finds the last ``src`` (or, failing that, the first ``repro``)
    component and joins everything after it; falls back to the bare stem
    for paths outside any package layout (test fixtures in tmp dirs).
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    anchor = -1
    for index, part in enumerate(parts):
        if part == "src":
            anchor = index
    if anchor < 0 and "repro" in parts:
        anchor = parts.index("repro") - 1
    if anchor < 0 or anchor + 1 >= len(parts):
        return parts[-1] if parts else ""
    return ".".join(parts[anchor + 1:])


_ANCHOR_CACHE: dict[Path, frozenset[str]] = {}


def design_anchors_for(path: Path) -> frozenset[str] | None:
    """Anchors of the nearest ``DESIGN.md`` above *path* (cached)."""
    try:
        probe = path.resolve().parent
    except OSError:
        return None
    for directory in [probe, *probe.parents]:
        candidate = directory / "DESIGN.md"
        if candidate.is_file():
            cached = _ANCHOR_CACHE.get(candidate)
            if cached is None:
                cached = rl005_anchors.extract_anchors(
                    candidate.read_text(encoding="utf-8")
                )
                _ANCHOR_CACHE[candidate] = cached
            return cached
    return None


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated ``*.py`` list."""
    seen: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not SKIP_DIRS.intersection(candidate.parts):
                    seen.setdefault(candidate, None)
        elif path.suffix == ".py":
            seen.setdefault(path, None)
    return sorted(seen)


def lint_source(
    source: str,
    path: str = "<fixture>.py",
    module: str | None = None,
    anchors: Iterable[str] | None = None,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint one source string; the unit-test entry point.

    Findings silenced by suppression comments come back with
    ``suppressed=True`` (not dropped), mirroring the file engine.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [
            Finding(
                rule="PARSE",
                path=path,
                line=error.lineno or 1,
                column=error.offset or 0,
                message=f"syntax error: {error.msg}",
            )
        ]
    ctx = ModuleContext(
        path=path,
        module=module if module is not None else module_name_for(Path(path)),
        source=source,
        tree=tree,
        anchors=frozenset(anchors) if anchors is not None else None,
    )
    suppressions = scan_suppressions(source)
    findings: list[Finding] = []
    for rule in rules if rules is not None else all_rules():
        for finding in rule.check(ctx):
            if suppressions.is_suppressed(finding.rule, finding.line):
                finding = finding.suppress()
            findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def lint_file(path: Path, rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Lint one file from disk."""
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as error:
        return [
            Finding(
                rule="PARSE",
                path=str(path),
                line=1,
                column=0,
                message=f"cannot read file: {error}",
            )
        ]
    return lint_source(
        source,
        path=str(path),
        module=module_name_for(path),
        anchors=design_anchors_for(path),
        rules=rules,
    )


def lint_paths(
    paths: Sequence[str | Path],
    rules: Sequence[Rule] | None = None,
) -> LintReport:
    """Lint files and directories into one report."""
    report = LintReport()
    files = discover_files(paths)
    report.files_checked = len(files)
    for path in files:
        report.extend(lint_file(path, rules))
    return report.finish()


__all__ = [
    "discover_files",
    "design_anchors_for",
    "lint_file",
    "lint_paths",
    "lint_source",
    "module_name_for",
]
