"""The rule registry: rule base class, registration, lookup.

Rules self-register at import time via the :func:`register` decorator;
:mod:`repro.devtools.lint.rules` imports every rule module so importing
the package populates the registry. Each rule owns one code (``RLnnn``),
a one-line summary, and the invariant it protects (shown by
``repro lint --list-rules`` and quoted in the docs).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Type, TypeVar

from repro.devtools.lint.findings import Finding


@dataclass
class ModuleContext:
    """Everything a rule may look at for one file."""

    path: str
    module: str
    source: str
    tree: ast.Module
    #: Paper anchors harvested from DESIGN.md (``Definition 8``,
    #: ``Theorem 2``, ``Lemma``); None when no DESIGN.md was found, in
    #: which case anchor-dependent rules skip the file.
    anchors: frozenset[str] | None = None
    _parents: dict[ast.AST, ast.AST] | None = None

    def parent_of(self, node: ast.AST) -> ast.AST | None:
        """The AST parent of *node* (lazily built once per file)."""
        if self._parents is None:
            self._parents = {
                child: parent
                for parent in ast.walk(self.tree)
                for child in ast.iter_child_nodes(parent)
            }
        return self._parents.get(node)

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule.code,
            path=self.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            message=message,
        )


class Rule:
    """Base of all repro-lint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings for one module. Rules must be pure functions of
    the context: no filesystem access, no mutation, deterministic
    output order (the engine sorts findings, but rule determinism keeps
    JSON reports diffable).
    """

    code: str = "RL000"
    name: str = "unnamed"
    invariant: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def applies_to(self, ctx: ModuleContext) -> bool:
        """Module filter; rules scoped to package subsets override this."""
        return True


_REGISTRY: dict[str, Rule] = {}

R = TypeVar("R", bound=Type[Rule])


def register(rule_cls: R) -> R:
    """Class decorator: instantiate and register a rule by its code."""
    rule = rule_cls()
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code: {rule.code}")
    _REGISTRY[rule.code] = rule
    return rule_cls


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    return _REGISTRY[code.upper()]


# ----------------------------------------------------------------------
# Shared AST helpers used by several rules
# ----------------------------------------------------------------------

def call_name(func: ast.AST) -> str | None:
    """The trailing name of a call target (``Name`` or ``Attribute``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def top_level_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Module-level functions and class methods (nested defs excluded)."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield item


def decorator_names(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    names: set[str] = set()
    for decorator in func.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = call_name(target)
        if name:
            names.add(name)
    return names


def walk_scoped(
    node: ast.AST,
    in_loop: bool,
    visit: Callable[[ast.AST, bool], None],
    skip: Iterable[Type[ast.AST]] = (),
) -> None:
    """Walk *node* tracking whether each descendant executes inside a loop.

    ``For``/``While`` bodies (and comprehension elements past the first,
    once-evaluated iterable) count as in-loop; subtrees whose type is in
    *skip* are not entered at all.
    """
    if isinstance(node, tuple(skip)):
        return
    visit(node, in_loop)
    if isinstance(node, (ast.For, ast.AsyncFor)):
        walk_scoped(node.iter, in_loop, visit, skip)
        walk_scoped(node.target, in_loop, visit, skip)
        for child in node.body + node.orelse:
            walk_scoped(child, True, visit, skip)
    elif isinstance(node, ast.While):
        walk_scoped(node.test, True, visit, skip)
        for child in node.body + node.orelse:
            walk_scoped(child, True, visit, skip)
    elif isinstance(
        node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
    ):
        for index, generator in enumerate(node.generators):
            walk_scoped(generator.iter, in_loop or index > 0, visit, skip)
            walk_scoped(generator.target, True, visit, skip)
            for condition in generator.ifs:
                walk_scoped(condition, True, visit, skip)
        if isinstance(node, ast.DictComp):
            walk_scoped(node.key, True, visit, skip)
            walk_scoped(node.value, True, visit, skip)
        else:
            walk_scoped(node.elt, True, visit, skip)
    else:
        for child in ast.iter_child_nodes(node):
            walk_scoped(child, in_loop, visit, skip)


__all__ = [
    "ModuleContext",
    "Rule",
    "register",
    "all_rules",
    "get_rule",
    "call_name",
    "top_level_functions",
    "decorator_names",
    "walk_scoped",
]
