"""Rule modules; importing this package populates the registry."""

from repro.devtools.lint.rules import (  # noqa: F401
    rl001_determinism,
    rl002_hot_loop,
    rl003_boundary,
    rl004_pickle,
    rl005_anchors,
    rl006_columnar,
    rl007_wire,
    rl008_async,
)
