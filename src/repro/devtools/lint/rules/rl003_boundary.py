"""RL003 — mask-kernel boundary containment.

The interned bitmask representation is an implementation detail of
``repro.core``: everything above it speaks ``(sender, receiver)``
string pairs (checkpoint JSON, ``LearningResult``, the shard
coordinator's public surface). If analysis, trace or CLI code reached
into ``.mask`` ints or the :class:`~repro.core.interning.TaskTable`
bit machinery, the kernel could never change representation again —
and a module-level ``TaskTable`` built from a *different* task order
would silently desynchronize pair indices.

Outside ``repro.core`` (and ``repro.devtools`` itself) the rule flags:

* importing ``repro.core.interning`` at all;
* referencing the ``PairSet``, ``TaskTable`` or ``WeightKernel`` names;
* touching mask internals: the ``.mask`` / ``.pairs_mask`` attributes
  or the ``pair_bit`` / ``pair_index`` / ``mask_of`` / ``bits_of`` /
  ``indices_of`` / ``iter_indices`` / ``mirror_mask`` accessors;
* the batch kernel's bulk mask operations (``pack_masks``,
  ``batch_set_weights``, …) — the array-of-masks layout of
  :mod:`repro.core.batch` is as internal as the bitmask ints it packs.
  Select the backend through the string registry instead
  (``learn_dependencies(..., kernel="batch")``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import ModuleContext, Rule, register

KERNEL_MODULE = "repro.core.interning"

#: Class names that are kernel-internal.
KERNEL_NAMES = frozenset({"PairSet", "TaskTable", "WeightKernel"})

#: Bulk mask operations of the batch kernel (repro.core.batch): the
#: packed uint64 mask-column layout must not leak past the boundary.
BATCH_KERNEL_NAMES = frozenset(
    {
        "pack_masks",
        "unpack_masks",
        "batch_set_weights",
        "batch_union_deltas",
        "batch_extension_tables",
        "batch_remove_redundant_masks",
    }
)

#: Attribute touches that expose mask internals.
KERNEL_ATTRIBUTES = frozenset(
    {
        "mask",
        "pairs_mask",
        "pair_bit",
        "pair_index",
        "mask_of",
        "bits_of",
        "indices_of",
        "iter_indices",
        "mirror_mask",
    }
)

#: Packages allowed to touch the kernel.
ALLOWED_PREFIXES = ("repro.core", "repro.devtools")


@register
class BoundaryRule(Rule):
    code = "RL003"
    name = "mask-boundary-containment"
    invariant = (
        "modules outside repro.core exchange string pairs only; masks, "
        "pair bits and the TaskTable never cross the core boundary"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module.startswith("repro") and not ctx.module.startswith(
            ALLOWED_PREFIXES
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.applies_to(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module and node.module.startswith(KERNEL_MODULE):
                    yield ctx.finding(
                        self,
                        node,
                        f"import from {KERNEL_MODULE} outside repro.core; "
                        "use the string boundary API (LearningResult "
                        "pairs, checkpoint JSON)",
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith(KERNEL_MODULE):
                        yield ctx.finding(
                            self,
                            node,
                            f"import of {KERNEL_MODULE} outside repro.core",
                        )
            elif isinstance(node, ast.Name) and node.id in KERNEL_NAMES:
                yield ctx.finding(
                    self,
                    node,
                    f"'{node.id}' is kernel-internal; modules outside "
                    "repro.core must stay on the string pair API",
                )
            elif isinstance(node, ast.Name) and node.id in BATCH_KERNEL_NAMES:
                yield ctx.finding(
                    self,
                    node,
                    f"'{node.id}' is a batch-kernel bulk op; select the "
                    "backend via the kernel registry "
                    "(learn_dependencies(..., kernel=...)) instead",
                )
            elif isinstance(node, ast.Attribute):
                if node.attr in KERNEL_ATTRIBUTES:
                    yield ctx.finding(
                        self,
                        node,
                        f"'.{node.attr}' touches mask internals outside "
                        "repro.core; use the string boundary API",
                    )


__all__ = [
    "BoundaryRule",
    "KERNEL_ATTRIBUTES",
    "KERNEL_NAMES",
    "BATCH_KERNEL_NAMES",
]
