"""RL005 — paper-anchor integrity of docstring citations.

Docstrings across the codebase justify algorithmic choices by citing
the paper — ``Definition 8``, ``Theorem 2``, the ``Lemma``. Those
citations are load-bearing documentation: a reader follows them into
``DESIGN.md``, which indexes every paper artifact the reproduction
relies on. A citation that resolves to nothing (a typo'd number, an
anchor dropped in a DESIGN.md rewrite) silently corrupts the paper
trail, so every ``Definition N`` / ``Theorem N`` / ``Lemma [N]``
mention in a module, class or function docstring must match an anchor
present in DESIGN.md's text.

Anchors are harvested by the engine from the nearest ``DESIGN.md``
above the linted file (so the rule works from any checkout location);
files with no DESIGN.md in scope are skipped.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import ModuleContext, Rule, register

#: "Definition 8", "Theorems 2" (first number of a plural range), etc.
CITATION_RE = re.compile(r"\b(Definition|Theorem|Lemma)s?\s+(\d+)")
#: A bare "Lemma" (the paper has exactly one, cited unnumbered).
BARE_LEMMA_RE = re.compile(r"\bLemma\b(?!\s*\d)")


def extract_anchors(text: str) -> frozenset[str]:
    """All paper anchors present in *text* (DESIGN.md's content)."""
    anchors = {
        f"{kind} {number}" for kind, number in CITATION_RE.findall(text)
    }
    if BARE_LEMMA_RE.search(text):
        anchors.add("Lemma")
    return frozenset(anchors)


def _docstring_nodes(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.Constant]]:
    """(owner name, docstring constant) for module, classes, functions."""
    stack: list[tuple[str, ast.AST]] = [("module", tree)]
    while stack:
        name, node = stack.pop()
        body = getattr(node, "body", [])
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            yield name, body[0].value
        for child in body:
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                stack.append((child.name, child))


@register
class AnchorRule(Rule):
    code = "RL005"
    name = "paper-anchor-integrity"
    invariant = (
        "every Definition/Theorem/Lemma citation in a docstring resolves "
        "to an anchor present in DESIGN.md"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        anchors = ctx.anchors
        if anchors is None:
            return
        for owner, doc in _docstring_nodes(ctx.tree):
            text = doc.value
            cited: list[tuple[str, int]] = [
                (f"{m.group(1)} {m.group(2)}", m.start())
                for m in CITATION_RE.finditer(text)
            ]
            cited.extend(
                ("Lemma", m.start()) for m in BARE_LEMMA_RE.finditer(text)
            )
            for anchor, offset in sorted(cited, key=lambda item: item[1]):
                if anchor in anchors:
                    continue
                line = doc.lineno + text[:offset].count("\n")
                yield Finding(
                    rule=self.code,
                    path=ctx.path,
                    line=line,
                    column=0,
                    message=(
                        f"docstring of '{owner}' cites '{anchor}' but "
                        "DESIGN.md has no such anchor; fix the citation "
                        "or add the anchor to DESIGN.md's index"
                    ),
                )


__all__ = ["AnchorRule", "extract_anchors"]
