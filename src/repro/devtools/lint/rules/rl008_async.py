"""RL008 — asyncio event-loop confinement to the service package.

The session service (:mod:`repro.service`) is the repo's one
event-loop program: a daemon juggling hundreds of live sockets is
exactly what cooperative scheduling is for. Everywhere else the
codebase is deliberately synchronous — learners are pure incremental
state machines, the distributed runtime is thread-and-process based,
and the CLI is a batch program. Letting ``async`` leak into those
layers would fork every API into sync/async twins and make the
learner hot loop's cost model (paper Theorems 2/3) hostage to
scheduler behavior.

Outside ``repro.service`` (and ``repro.devtools`` itself) the rule
flags:

* importing :mod:`asyncio` — by ``import`` or ``from``-import, whole
  or by submodule;
* defining a coroutine (``async def``), including async generators;
* ``async for`` / ``async with`` blocks (unreachable without the
  above, but reported at their own site for better messages).

The service exposes synchronous entry points (``serve_service``, the
client library) so callers above the boundary never touch a loop.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import ModuleContext, Rule, register

#: Modules allowed to run an event loop.
ALLOWED_PREFIXES = (
    "repro.service",
    "repro.devtools",
)


@register
class AsyncConfinementRule(Rule):
    code = "RL008"
    name = "async-confinement"
    invariant = (
        "asyncio and coroutines exist only inside repro.service; every "
        "other layer stays synchronous"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module.startswith("repro") and not ctx.module.startswith(
            ALLOWED_PREFIXES
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.applies_to(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "asyncio" or alias.name.startswith(
                        "asyncio."
                    ):
                        yield ctx.finding(
                            self,
                            node,
                            "import of asyncio outside repro.service; use "
                            "the service's synchronous entry points instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "asyncio" or module.startswith("asyncio."):
                    yield ctx.finding(
                        self,
                        node,
                        "import from asyncio outside repro.service; use "
                        "the service's synchronous entry points instead",
                    )
            elif isinstance(node, ast.AsyncFunctionDef):
                yield ctx.finding(
                    self,
                    node,
                    f"coroutine '{node.name}' defined outside repro.service; "
                    "this layer is synchronous by contract",
                )
            elif isinstance(node, (ast.AsyncFor, ast.AsyncWith)):
                construct = (
                    "async for" if isinstance(node, ast.AsyncFor) else "async with"
                )
                yield ctx.finding(
                    self,
                    node,
                    f"'{construct}' outside repro.service; this layer is "
                    "synchronous by contract",
                )


__all__ = ["ALLOWED_PREFIXES", "AsyncConfinementRule"]
