"""RL004 — shard/pickle safety at the process-pool boundary.

Shard-parallel learning (:mod:`repro.core.sharded`) ships work to
``ProcessPoolExecutor`` workers, which pickle the callable and every
argument. Lambdas, nested functions and closures pickle by *reference
to a module-level name* — which they do not have — so they fail at
submit time on some platforms and, worse, only at result time on
others. The rule keeps the boundary statically safe:

* callables submitted via ``pool.submit(f, ...)`` / ``pool.map(f, ...)``
  (where ``pool`` is bound to a ``ProcessPoolExecutor`` by a ``with``
  item or an assignment in the same function) must be module-level
  ``def``s or imported names — never lambdas, nested defs, or local
  names bound to lambdas;
* lambdas anywhere else in the submit/map argument list are flagged
  too (they would be pickled as arguments).

Names the rule cannot resolve (parameters, attributes) get the benefit
of the doubt; the differential shard tests cover the dynamic rest.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import (
    ModuleContext,
    Rule,
    call_name,
    register,
    top_level_functions,
)

POOL_TYPES = frozenset({"ProcessPoolExecutor"})
SUBMIT_METHODS = frozenset({"submit", "map"})


def _is_pool_constructor(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and call_name(node.func) in POOL_TYPES


@register
class PickleSafetyRule(Rule):
    code = "RL004"
    name = "shard-pickle-safety"
    invariant = (
        "everything crossing the ProcessPoolExecutor shard boundary is "
        "picklable: module-level functions, no lambdas or closures"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in top_level_functions(ctx.tree):
            yield from self._check_function(ctx, func)

    def _check_function(
        self,
        ctx: ModuleContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        pool_names: set[str] = set()
        nested_defs: set[str] = set()
        lambda_names: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.With):
                for item in node.items:
                    if _is_pool_constructor(item.context_expr) and isinstance(
                        item.optional_vars, ast.Name
                    ):
                        pool_names.add(item.optional_vars.id)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if _is_pool_constructor(node.value):
                        pool_names.add(target.id)
                    elif isinstance(node.value, ast.Lambda):
                        lambda_names.add(target.id)
            elif (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not func
            ):
                nested_defs.add(node.name)
        if not pool_names:
            return
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            if not (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in SUBMIT_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in pool_names
            ):
                continue
            target = node.args[0] if node.args else None
            if isinstance(target, ast.Lambda):
                yield ctx.finding(
                    self,
                    target,
                    "lambda submitted to a process pool is not picklable; "
                    "use a module-level function",
                )
            elif isinstance(target, ast.Name):
                if target.id in nested_defs:
                    yield ctx.finding(
                        self,
                        target,
                        f"nested function '{target.id}' submitted to a "
                        "process pool is not picklable; hoist it to module "
                        "level",
                    )
                elif target.id in lambda_names:
                    yield ctx.finding(
                        self,
                        target,
                        f"'{target.id}' is bound to a lambda; process-pool "
                        "callables must be module-level functions",
                    )
                # Module-level names and unresolvable bindings (parameters,
                # attributes) get the benefit of the doubt; the dynamic
                # shard tests cover them.
            for extra in list(node.args[1:]) + [kw.value for kw in node.keywords]:
                for sub in ast.walk(extra):
                    if isinstance(sub, ast.Lambda):
                        yield ctx.finding(
                            self,
                            sub,
                            "lambda in a process-pool argument list would "
                            "be pickled; pass data, not code",
                        )


__all__ = ["PickleSafetyRule"]
