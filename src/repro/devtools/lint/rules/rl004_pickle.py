"""RL004 — shard/pickle safety at the process-pool boundary.

Shard-parallel learning (:mod:`repro.core.sharded`) ships work to
``ProcessPoolExecutor`` workers — and, with a ``--scheduler``, to
remote ``repro worker`` daemons through
:class:`repro.distributed.TcpShardExecutor` — both of which pickle the
callable and every argument (the local pool through the
multiprocessing pipe, the TCP coordinator into wire frames). Lambdas,
nested functions and closures pickle by *reference
to a module-level name* — which they do not have — so they fail at
submit time on some platforms and, worse, only at result time on
others. The rule keeps the boundary statically safe:

* callables submitted via ``pool.submit(f, ...)`` / ``pool.map(f, ...)``
  must be module-level ``def``s or imported names — never lambdas,
  nested defs, or local names bound to lambdas;
* lambdas anywhere else in the submit/map argument list are flagged
  too (they would be pickled as arguments).

A name counts as a pool when it is bound to a ``ProcessPoolExecutor``
by a ``with`` item or an assignment in the same function, when it is a
parameter whose annotation names a pool type (the fault-tolerant
runtime's resubmission helpers receive their pool this way), when it is
assigned from a call to a function in the same module whose *return*
annotation names a pool type (pool-rebuild factories like
``self._new_pool()``), or when the pool is held on an attribute
(``self._pool = ProcessPoolExecutor(...)`` then ``self._pool.submit``).

Names the rule cannot resolve get the benefit of the doubt; the
differential shard tests cover the dynamic rest.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import (
    ModuleContext,
    Rule,
    call_name,
    register,
    top_level_functions,
)

#: Executor types whose ``submit``/``map`` cross a pickle boundary. The
#: bare ``Executor`` protocol is deliberately included: the shard
#: runtime's seam (:class:`repro.core.shardexec.ShardExecutorFactory`)
#: types its executors abstractly, and *every* substrate behind that
#: seam pickles — local process pools via the multiprocessing pipe,
#: :class:`repro.distributed.TcpShardExecutor` via wire frames — so
#: abstract submit sites need the same static safety.
POOL_TYPES = frozenset({"ProcessPoolExecutor", "TcpShardExecutor", "Executor"})
SUBMIT_METHODS = frozenset({"submit", "map"})


def _is_pool_constructor(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and call_name(node.func) in POOL_TYPES


def _annotation_names_pool(annotation: ast.AST | None) -> bool:
    """True when the annotation mentions a pool type anywhere — covers
    plain names, dotted names, unions (``ProcessPoolExecutor | None``)
    and string annotations."""
    if annotation is None:
        return False
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id in POOL_TYPES:
            return True
        if isinstance(node, ast.Attribute) and node.attr in POOL_TYPES:
            return True
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and any(pool in node.value for pool in POOL_TYPES)
        ):
            return True
    return False


def _pool_factories(tree: ast.Module) -> frozenset[str]:
    """Names of functions whose return annotation names a pool type."""
    return frozenset(
        func.name
        for func in top_level_functions(tree)
        if _annotation_names_pool(func.returns)
    )


def _dotted(node: ast.AST) -> str | None:
    """``self._pool`` for an attribute chain of plain names, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@register
class PickleSafetyRule(Rule):
    code = "RL004"
    name = "shard-pickle-safety"
    invariant = (
        "everything crossing the ProcessPoolExecutor shard boundary is "
        "picklable: module-level functions, no lambdas or closures"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        factories = _pool_factories(ctx.tree)
        for func in top_level_functions(ctx.tree):
            yield from self._check_function(ctx, func, factories)

    def _check_function(
        self,
        ctx: ModuleContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        factories: frozenset[str],
    ) -> Iterator[Finding]:
        def binds_pool(value: ast.AST | None) -> bool:
            """Constructor call or a call to a pool-returning factory."""
            if value is None:
                return False
            return _is_pool_constructor(value) or (
                isinstance(value, ast.Call)
                and call_name(value.func) in factories
            )

        pool_names: set[str] = set()
        pool_attrs: set[str] = set()
        nested_defs: set[str] = set()
        lambda_names: set[str] = set()
        arguments = func.args
        for arg in (
            *arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs
        ):
            if _annotation_names_pool(arg.annotation):
                pool_names.add(arg.arg)
        for node in ast.walk(func):
            if isinstance(node, ast.With):
                for item in node.items:
                    if binds_pool(item.context_expr) and isinstance(
                        item.optional_vars, ast.Name
                    ):
                        pool_names.add(item.optional_vars.id)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if binds_pool(node.value):
                            pool_names.add(target.id)
                        elif isinstance(node.value, ast.Lambda):
                            lambda_names.add(target.id)
                    elif isinstance(target, ast.Attribute) and binds_pool(
                        node.value
                    ):
                        attr = _dotted(target)
                        if attr is not None:
                            pool_attrs.add(attr)
            elif isinstance(node, ast.AnnAssign):
                if _annotation_names_pool(node.annotation) or binds_pool(
                    node.value
                ):
                    if isinstance(node.target, ast.Name):
                        pool_names.add(node.target.id)
                    elif isinstance(node.target, ast.Attribute):
                        attr = _dotted(node.target)
                        if attr is not None:
                            pool_attrs.add(attr)
            elif (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not func
            ):
                nested_defs.add(node.name)
        if not pool_names and not pool_attrs:
            return
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            if not (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in SUBMIT_METHODS
            ):
                continue
            receiver = node.func.value
            if isinstance(receiver, ast.Name):
                if receiver.id not in pool_names:
                    continue
            elif isinstance(receiver, ast.Attribute):
                if _dotted(receiver) not in pool_attrs:
                    continue
            else:
                continue
            target = node.args[0] if node.args else None
            if isinstance(target, ast.Lambda):
                yield ctx.finding(
                    self,
                    target,
                    "lambda submitted to a process pool is not picklable; "
                    "use a module-level function",
                )
            elif isinstance(target, ast.Name):
                if target.id in nested_defs:
                    yield ctx.finding(
                        self,
                        target,
                        f"nested function '{target.id}' submitted to a "
                        "process pool is not picklable; hoist it to module "
                        "level",
                    )
                elif target.id in lambda_names:
                    yield ctx.finding(
                        self,
                        target,
                        f"'{target.id}' is bound to a lambda; process-pool "
                        "callables must be module-level functions",
                    )
                # Module-level names and unresolvable bindings (parameters,
                # attributes) get the benefit of the doubt; the dynamic
                # shard tests cover them.
            for extra in list(node.args[1:]) + [kw.value for kw in node.keywords]:
                for sub in ast.walk(extra):
                    if isinstance(sub, ast.Lambda):
                        yield ctx.finding(
                            self,
                            sub,
                            "lambda in a process-pool argument list would "
                            "be pickled; pass data, not code",
                        )


__all__ = ["PickleSafetyRule"]
