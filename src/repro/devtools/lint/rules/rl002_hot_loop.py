"""RL002 — hot-loop purity in the mask kernel.

The PR-3 bitmask kernel is fast because its hot loops touch nothing but
ints: no string pair sets, no mask decoding, no per-iteration string
formatting. That property is marked in source with the
``@hot_loop`` decorator (:func:`repro.core.instrumentation.hot_loop`)
and enforced here in two parts:

**Coverage** — in the kernel modules (``repro.core.interning``,
``heuristic``, ``exact``, ``sharded``, ``batch``) every module-level function or
method that contains a ``for``/``while`` statement (including in nested
defs) must either carry ``@hot_loop`` or a per-line suppression; the
suppression is the explicit record that a loop is boundary code
(decode, coordination) rather than kernel code.

**Purity** — inside any ``@hot_loop`` function, in any module:

* calls that decode masks back to strings (``pairs_of``,
  ``sorted_pairs_of``, ``to_pairs``, ``as_strings``, ``decode``) are
  flagged anywhere in the function;
* f-strings and ``set``/``frozenset`` construction (string pair sets)
  are flagged when they execute *inside* a loop. ``raise`` statements
  are exempt: error paths may allocate, they fire once.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import (
    ModuleContext,
    Rule,
    call_name,
    decorator_names,
    register,
    top_level_functions,
    walk_scoped,
)

#: Modules whose statement loops must be @hot_loop-marked (or waived).
KERNEL_MODULES = frozenset(
    {
        "repro.core.interning",
        "repro.core.heuristic",
        "repro.core.exact",
        "repro.core.sharded",
        "repro.core.batch",
    }
)

MARKER = "hot_loop"

#: Calls that decode the interned representation back into strings.
DECODE_NAMES = frozenset(
    {"pairs_of", "sorted_pairs_of", "to_pairs", "as_strings", "decode"}
)


def _contains_statement_loop(func: ast.AST) -> bool:
    return any(
        isinstance(node, (ast.For, ast.AsyncFor, ast.While))
        for node in ast.walk(func)
    )


@register
class HotLoopRule(Rule):
    code = "RL002"
    name = "hot-loop-purity"
    invariant = (
        "kernel hot loops operate on interned ints only: no mask "
        "decoding, no string pair-set construction, no f-string "
        "allocation per iteration"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        in_kernel = ctx.module in KERNEL_MODULES
        for func in top_level_functions(ctx.tree):
            marked = MARKER in decorator_names(func)
            if in_kernel and not marked and _contains_statement_loop(func):
                yield ctx.finding(
                    self,
                    func,
                    f"kernel function '{func.name}' contains loops but is "
                    "not marked @hot_loop; mark it, or suppress if it is "
                    "boundary code",
                )
            if marked:
                yield from self._check_purity(ctx, func)

    def _check_purity(
        self,
        ctx: ModuleContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        findings: list[Finding] = []

        def visit(node: ast.AST, in_loop: bool) -> None:
            if isinstance(node, ast.Call):
                name = call_name(node.func)
                if name in DECODE_NAMES:
                    findings.append(
                        ctx.finding(
                            self,
                            node,
                            f"'{name}' decodes masks to strings inside "
                            f"@hot_loop '{func.name}'; decode at the "
                            "boundary instead",
                        )
                    )
                elif (
                    in_loop
                    and isinstance(node.func, ast.Name)
                    and name in {"set", "frozenset"}
                ):
                    findings.append(
                        ctx.finding(
                            self,
                            node,
                            f"{name}(...) construction inside a loop of "
                            f"@hot_loop '{func.name}'; keep the loop on "
                            "interned masks",
                        )
                    )
            elif isinstance(node, ast.Set) and in_loop:
                findings.append(
                    ctx.finding(
                        self,
                        node,
                        "set literal inside a loop of @hot_loop "
                        f"'{func.name}'; keep the loop on interned masks",
                    )
                )
            elif isinstance(node, ast.JoinedStr) and in_loop:
                findings.append(
                    ctx.finding(
                        self,
                        node,
                        "f-string allocation inside a loop of @hot_loop "
                        f"'{func.name}'; format at the boundary instead",
                    )
                )

        # Error paths (raise statements) may allocate: they fire once.
        walk_scoped(func, False, visit, skip=(ast.Raise,))
        yield from findings


__all__ = ["HotLoopRule", "KERNEL_MODULES", "DECODE_NAMES"]
