"""RL006 — columnar-store boundary containment.

The raw column layout of the ``.rts`` trace store — parallel
little-endian arrays, interned subject codes, the ``mmap`` window they
are viewed through — is an implementation detail of
:mod:`repro.trace.columnar` and :mod:`repro.trace.store`. Everything
above that boundary speaks :class:`~repro.trace.period.Period` and
:class:`~repro.trace.events.Event` objects (lazily materialized by the
columnar views). If learners, analysis or CLI code read the raw
columns directly, the on-disk layout could never change again, and a
consumer holding a live column view would silently pin the mmap (and
the file) open past ``TraceStore.close()``.

Outside the two columnar modules (and ``repro.devtools`` itself) the
rule flags:

* importing :mod:`mmap` at all — mapped trace windows are created in
  exactly one place so their lifetime is auditable;
* the raw-column accessors ``times_view`` / ``kinds_view`` /
  ``subjects_view`` / ``offsets_view`` — the only API that exposes the
  backing arrays — whether called as attributes or referenced by name;
* the subject-interning primitives ``encode_subject`` /
  ``decode_subject``: subject codes (including the tagged auto-label
  range) must not leak past the boundary as plain ints.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import ModuleContext, Rule, register

#: Accessors that hand out the raw backing columns.
COLUMN_ACCESSORS = frozenset(
    {
        "times_view",
        "kinds_view",
        "subjects_view",
        "offsets_view",
    }
)

#: Subject-interning primitives; codes are boundary-internal.
INTERNING_NAMES = frozenset({"encode_subject", "decode_subject"})

#: Modules allowed to touch raw columns and mmap windows.
ALLOWED_PREFIXES = (
    "repro.trace.columnar",
    "repro.trace.store",
    "repro.devtools",
)


@register
class ColumnarBoundaryRule(Rule):
    code = "RL006"
    name = "columnar-boundary-containment"
    invariant = (
        "modules outside repro.trace.columnar/.store consume Period "
        "objects only; raw columns, subject codes and mmap windows "
        "never cross the columnar boundary"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module.startswith("repro") and not ctx.module.startswith(
            ALLOWED_PREFIXES
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.applies_to(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "mmap" or (
                    node.module and node.module.startswith("mmap.")
                ):
                    yield ctx.finding(
                        self,
                        node,
                        "import from mmap outside the columnar boundary; "
                        "open stores via repro.trace.store.open_store",
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "mmap" or alias.name.startswith("mmap."):
                        yield ctx.finding(
                            self,
                            node,
                            "import of mmap outside the columnar boundary; "
                            "open stores via repro.trace.store.open_store",
                        )
            elif isinstance(node, ast.Name) and node.id in INTERNING_NAMES:
                yield ctx.finding(
                    self,
                    node,
                    f"'{node.id}' interns subject codes; modules outside "
                    "the columnar boundary must stay on Period/Event "
                    "objects",
                )
            elif isinstance(node, ast.Attribute):
                if node.attr in COLUMN_ACCESSORS:
                    yield ctx.finding(
                        self,
                        node,
                        f"'.{node.attr}' exposes a raw store column "
                        "outside the columnar boundary; iterate periods "
                        "instead",
                    )
            elif isinstance(node, ast.Name) and node.id in COLUMN_ACCESSORS:
                yield ctx.finding(
                    self,
                    node,
                    f"'{node.id}' exposes a raw store column outside the "
                    "columnar boundary; iterate periods instead",
                )


__all__ = [
    "ALLOWED_PREFIXES",
    "COLUMN_ACCESSORS",
    "ColumnarBoundaryRule",
    "INTERNING_NAMES",
]
