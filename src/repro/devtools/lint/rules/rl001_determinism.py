"""RL001 — deterministic iteration on output paths.

The reproduction's headline guarantee is *bit-for-bit* output identity:
checkpoints, model JSON, reports and CLI text must not depend on
``PYTHONHASHSEED``. Sets (and, conservatively, ``dict.values()`` views
whose insertion order is an accident of the call site) iterate in hash
order; any such iteration that feeds an output artifact must pass
through ``sorted(...)`` first.

The rule is scoped to the modules that produce externally visible
bytes (results, checkpoints, reports, trace writers, CLI, pipeline)
and flags:

* ``for``-loops whose iterable is set-typed;
* ordered comprehensions (list/dict/generator) drawing from a
  set-typed iterable, unless the comprehension is consumed whole by an
  order-insensitive reducer (``sum``, ``min``, ``max``, ``any``,
  ``all``, ``len``, ``sorted``, ``set``, ``frozenset``);
* order-sensitive wrappers — ``list()``, ``tuple()``, ``enumerate()``
  and ``str.join`` — applied directly to a set-typed expression.

"Set-typed" is judged syntactically: ``set(...)``/``frozenset(...)``
calls, set literals and comprehensions, ``.values()`` calls, local
names assigned from those, and the codebase's known frozenset
attributes (``.pairs`` / ``.period_pairs`` of a hypothesis). Set
comprehensions over sets are exempt (no order can leak from an
unordered result).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import (
    ModuleContext,
    Rule,
    call_name,
    register,
)

#: Modules whose output must be hash-seed independent.
OUTPUT_MODULE_PREFIXES = (
    "repro.cli",
    "repro.core.result",
    "repro.core.checkpoint",
    "repro.core.depfunc",
    "repro.analysis.report",
    "repro.analysis.dossier",
    "repro.bench.reporting",
    "repro.pipeline",
    "repro.trace.formats",
    "repro.trace.textio",
    "repro.trace.csvio",
    "repro.trace.jsonio",
    "repro.trace.canlog",
)

#: Consuming these with a set argument cannot leak iteration order.
ORDER_INSENSITIVE = frozenset(
    {"sorted", "sum", "min", "max", "any", "all", "len", "set", "frozenset"}
)

#: Wrapping a set in these preserves (and therefore leaks) hash order.
ORDER_SENSITIVE_WRAPPERS = frozenset({"list", "tuple", "enumerate"})

#: Attributes known to be frozensets throughout the codebase.
SET_ATTRIBUTES = frozenset({"pairs", "period_pairs"})


def _is_set_producer(node: ast.AST) -> bool:
    """Does this expression *syntactically* produce an unordered view?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node.func)
        if isinstance(node.func, ast.Name) and name in {"set", "frozenset"}:
            return True
        if isinstance(node.func, ast.Attribute) and name == "values":
            return True
    if isinstance(node, ast.Attribute) and node.attr in SET_ATTRIBUTES:
        return True
    return False


class _ScopeSets(ast.NodeVisitor):
    """Collect local names bound to set-typed expressions in one scope."""

    def __init__(self) -> None:
        self.names: set[str] = set()

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_producer(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.names.add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and _is_set_producer(node.value):
            if isinstance(node.target, ast.Name):
                self.names.add(node.target.id)
        self.generic_visit(node)

    # Nested scopes share the name pool conservatively; a false name
    # collision only widens the set of flagged iterables, and the fix
    # (sorted) is harmless.


@register
class DeterminismRule(Rule):
    code = "RL001"
    name = "deterministic-output-iteration"
    invariant = (
        "output artifacts (checkpoints, model JSON, reports, CLI text) "
        "are byte-identical across PYTHONHASHSEED values: no unsorted "
        "set/dict.values() iteration may feed them"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module.startswith(OUTPUT_MODULE_PREFIXES)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.applies_to(ctx):
            return
        collector = _ScopeSets()
        collector.visit(ctx.tree)
        set_names = collector.names

        def is_unordered(node: ast.AST) -> bool:
            if _is_set_producer(node):
                return True
            return isinstance(node, ast.Name) and node.id in set_names

        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if is_unordered(node.iter):
                    yield ctx.finding(
                        self,
                        node.iter,
                        "iteration over an unordered set feeds an output "
                        "path; wrap the iterable in sorted(...)",
                    )
            elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
                if not any(
                    is_unordered(gen.iter) for gen in node.generators
                ):
                    continue
                parent = ctx.parent_of(node)
                if (
                    isinstance(parent, ast.Call)
                    and call_name(parent.func) in ORDER_INSENSITIVE
                    and len(parent.args) >= 1
                    and parent.args[0] is node
                ):
                    continue
                yield ctx.finding(
                    self,
                    node,
                    "ordered comprehension over an unordered set on an "
                    "output path; sort the iterable or reduce it with an "
                    "order-insensitive function",
                )
            elif isinstance(node, ast.Call):
                name = call_name(node.func)
                wrapper = (
                    isinstance(node.func, ast.Name)
                    and name in ORDER_SENSITIVE_WRAPPERS
                )
                joiner = (
                    isinstance(node.func, ast.Attribute) and name == "join"
                )
                if (
                    (wrapper or joiner)
                    and node.args
                    and is_unordered(node.args[0])
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"{name}(...) over an unordered set preserves hash "
                        "order on an output path; sort first",
                    )


__all__ = ["DeterminismRule", "OUTPUT_MODULE_PREFIXES"]
