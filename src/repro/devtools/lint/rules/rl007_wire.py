"""RL007 — wire-framing confinement to the distributed package.

The distributed runtime's frame format — 4 magic bytes, a big-endian
length, a pickled payload — is an implementation detail of
:mod:`repro.distributed.framing`. Exactly one encoder and one decoder
exist; that is what makes the protocol versionable (bump
``PROTOCOL_VERSION`` and one magic string) and what keeps
pickle-over-socket auditable: the only place untrusted-looking bytes
become objects is a module whose docstring states the trust model.

Outside ``repro.distributed`` (and ``repro.devtools`` itself) the rule
flags:

* importing :mod:`repro.distributed.framing` — by ``import`` or
  ``from``-import, whole or by name;
* importing the framing primitives (``encode_frame`` / ``decode_frame``
  / ``send_frame`` / ``recv_frame`` / ``FRAME_MAGIC``) from anywhere,
  including re-exports off ``repro.distributed``;
* re-implementing the format: any call that both pickles and speaks to
  a socket in the same module (``pickle.dumps``/``loads`` alongside
  ``socket`` usage) is reported, since that is how a second framing
  layer starts.

Everything above the boundary exchanges ordinary objects with the
coordinator/worker APIs (:class:`repro.distributed.TcpShardExecutor`,
``serve_worker``) and never sees a frame.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import ModuleContext, Rule, register

#: The module that owns the frame format.
FRAMING_MODULE = "repro.distributed.framing"

#: Names that constitute the framing API; importing one of these
#: anywhere outside the package is a boundary breach even when it comes
#: via the package root's re-exports.
FRAMING_NAMES = frozenset(
    {
        "encode_frame",
        "decode_frame",
        "send_frame",
        "recv_frame",
        "FRAME_MAGIC",
    }
)

#: Modules allowed to frame and unframe bytes. The streaming session
#: service speaks the same RPF1 frames over its own asyncio transport,
#: so it shares the boundary with the distributed runtime.
ALLOWED_PREFIXES = (
    "repro.distributed",
    "repro.service",
    "repro.devtools",
)


@register
class WireFramingRule(Rule):
    code = "RL007"
    name = "wire-framing-confinement"
    invariant = (
        "wire framing (length-prefixed pickle over sockets) exists only "
        "inside repro.distributed; everything above exchanges objects"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module.startswith("repro") and not ctx.module.startswith(
            ALLOWED_PREFIXES
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self.applies_to(ctx):
            return
        uses_socket = False
        pickle_call: ast.AST | None = None
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == FRAMING_MODULE or module.startswith(
                    FRAMING_MODULE + "."
                ):
                    yield ctx.finding(
                        self,
                        node,
                        "import from the framing module outside "
                        "repro.distributed; exchange objects through the "
                        "coordinator/worker APIs instead",
                    )
                elif module.startswith("repro"):
                    for alias in node.names:
                        if alias.name in FRAMING_NAMES:
                            yield ctx.finding(
                                self,
                                node,
                                f"'{alias.name}' is wire-framing API; it "
                                "must not be used outside repro.distributed",
                            )
                if module == "socket" or module.startswith("socket."):
                    uses_socket = True
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == FRAMING_MODULE or alias.name.startswith(
                        FRAMING_MODULE + "."
                    ):
                        yield ctx.finding(
                            self,
                            node,
                            "import of the framing module outside "
                            "repro.distributed; exchange objects through "
                            "the coordinator/worker APIs instead",
                        )
                    if alias.name == "socket":
                        uses_socket = True
            elif isinstance(node, ast.Call):
                name = self._dotted_call(node)
                if name in ("pickle.dumps", "pickle.loads") and (
                    pickle_call is None
                ):
                    pickle_call = node
        if uses_socket and pickle_call is not None:
            yield ctx.finding(
                self,
                pickle_call,
                "module pickles and talks to sockets; a second framing "
                "layer must not grow outside repro.distributed.framing",
            )

    @staticmethod
    def _dotted_call(node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            return f"{func.value.id}.{func.attr}"
        return None


__all__ = ["ALLOWED_PREFIXES", "FRAMING_NAMES", "WireFramingRule"]
