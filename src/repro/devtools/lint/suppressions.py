"""Suppression comments: ``# repro-lint: ignore[RULE]``.

Two spellings are recognized (comma-separate multiple rule codes):

``# repro-lint: ignore[RL001]``
    Silences the listed rules on the comment's own line. When the
    comment stands alone on its line, it also covers the next line, so
    a suppression can sit above a long statement (most usefully above a
    ``def`` whose line is already full).

``# repro-lint: ignore-file[RL005]``
    Silences the listed rules for the whole file. Reserved for files
    that are *about* the suppressed pattern (fixtures, the linter's own
    tests); production code should suppress per line so every waiver is
    visible next to the code it waives.

Suppressed findings are not discarded: they stay in the report marked
``suppressed`` so the JSON artifact records every waiver.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_LINE_RE = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9_,\s]+)\]")
_FILE_RE = re.compile(r"#\s*repro-lint:\s*ignore-file\[([A-Za-z0-9_,\s]+)\]")


def _codes(group: str) -> set[str]:
    return {code.strip().upper() for code in group.split(",") if code.strip()}


@dataclass
class SuppressionIndex:
    """Which rule codes are silenced on which lines of one file."""

    per_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_wide:
            return True
        return rule in self.per_line.get(line, ())


def scan_suppressions(source: str) -> SuppressionIndex:
    """Build the suppression index of one file's source text."""
    index = SuppressionIndex()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            file_match = _FILE_RE.search(token.string)
            if file_match:
                index.file_wide.update(_codes(file_match.group(1)))
                continue
            line_match = _LINE_RE.search(token.string)
            if not line_match:
                continue
            codes = _codes(line_match.group(1))
            line = token.start[0]
            index.per_line.setdefault(line, set()).update(codes)
            standalone = not token.line[: token.start[1]].strip()
            if standalone:
                index.per_line.setdefault(line + 1, set()).update(codes)
    except (tokenize.TokenError, IndentationError):
        # Unparsable files are reported by the engine as parse findings;
        # there is nothing to suppress.
        pass
    return index


__all__ = ["SuppressionIndex", "scan_suppressions"]
