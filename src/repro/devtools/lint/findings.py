"""Finding and report types of the repro-lint pass.

A :class:`Finding` is one rule violation pinned to a file position; a
:class:`LintReport` is the outcome of linting a set of files, split into
*active* findings (which fail the run) and *suppressed* ones (silenced
by a ``# repro-lint: ignore[RULE]`` comment, kept for accounting so the
JSON artifact shows what was waived and where).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Sequence

REPORT_FORMAT = "repro-lint-report"
REPORT_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One rule violation at a file position."""

    rule: str
    path: str
    line: int
    column: int
    message: str
    suppressed: bool = False

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.rule)

    def render(self) -> str:
        """The human one-liner: ``path:line:col: RULE message``."""
        tag = " (suppressed)" if self.suppressed else ""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule} {self.message}{tag}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "suppressed": self.suppressed,
        }

    def suppress(self) -> "Finding":
        return replace(self, suppressed=True)


@dataclass
class LintReport:
    """Everything one lint run produced, in deterministic order."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    def extend(self, findings: Sequence[Finding]) -> None:
        self.findings.extend(findings)

    def finish(self) -> "LintReport":
        """Sort findings into the canonical (path, line, col, rule) order."""
        self.findings.sort(key=Finding.sort_key)
        return self

    @property
    def active(self) -> list[Finding]:
        """Findings that fail the run (not suppressed)."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    def counts_by_rule(self) -> dict[str, int]:
        """Active finding count per rule code (sorted by code)."""
        counts: dict[str, int] = {}
        for finding in self.active:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": REPORT_FORMAT,
            "version": REPORT_VERSION,
            "files_checked": self.files_checked,
            "summary": self.counts_by_rule(),
            "findings": [f.to_dict() for f in self.active],
            "suppressed": [f.to_dict() for f in self.suppressed],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Human-readable report: one line per active finding + summary."""
        lines = [f.render() for f in self.active]
        lines.append(
            f"{len(self.active)} finding(s) "
            f"({len(self.suppressed)} suppressed) "
            f"in {self.files_checked} file(s)"
        )
        return "\n".join(lines)


__all__ = ["Finding", "LintReport", "REPORT_FORMAT", "REPORT_VERSION"]
