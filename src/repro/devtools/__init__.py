"""Developer tooling that ships with the repository.

Nothing under ``repro.devtools`` is imported by the production library;
these modules exist so the repository can enforce its own invariants
(see :mod:`repro.devtools.lint`) with the same toolchain contributors
already have installed.
"""
