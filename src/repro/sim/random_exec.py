"""Execution-time models: where run-to-run timing variation comes from.

The paper motivates learning from traces precisely because the OSEK
scheduler and the CAN bus inject nondeterminism the specifications do not
capture. In this simulator the nondeterminism enters through (a) branch
decisions, (b) per-instance execution times drawn from these models, and
(c) bus arbitration among simultaneously queued frames.
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.systems.model import TaskSpec


class ExecutionTimeModel(Protocol):
    """Draws the execution time of one task instance."""

    def draw(self, task: TaskSpec, period_index: int) -> float:
        """Execution time for *task* in period *period_index*."""
        ...


class UniformExecutionModel:
    """Uniform draw from ``[bcet, wcet]`` using a dedicated seeded stream."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def draw(self, task: TaskSpec, period_index: int) -> float:
        if task.bcet == task.wcet:
            return task.wcet
        return self._rng.uniform(task.bcet, task.wcet)


class WorstCaseExecutionModel:
    """Every instance takes its WCET: fully deterministic timing."""

    def draw(self, task: TaskSpec, period_index: int) -> float:
        return task.wcet


class BestCaseExecutionModel:
    """Every instance takes its BCET."""

    def draw(self, task: TaskSpec, period_index: int) -> float:
        return task.bcet


class AlternatingExecutionModel:
    """Alternates BCET/WCET by period parity — a deterministic wiggle.

    Useful in tests that need timing variation without randomness.
    """

    def draw(self, task: TaskSpec, period_index: int) -> float:
        return task.bcet if period_index % 2 == 0 else task.wcet
