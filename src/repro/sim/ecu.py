"""Fixed-priority preemptive processor model (OSEK BCC1-like).

Each ECU runs at most one task at a time. Higher ``priority`` numbers win;
a newly released higher-priority task preempts the running one, which
resumes later from where it stopped. Equal priorities are served in
release order (FIFO), matching OSEK's activation queueing.

The model is a passive state machine driven by the simulator's event loop:
the loop calls :meth:`release` when a task becomes ready, asks
:meth:`next_completion_time` when picking the next event, and calls
:meth:`complete_current` when that event fires. Dispatch records (first
start of each instance) accumulate in :attr:`dispatch_log` for the bus
logger.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.sim.timebase import TIME_EPSILON


@dataclass
class _Job:
    """One released task instance."""

    task: str
    priority: int
    remaining: float
    release_time: float
    sequence: int
    started_at: float | None = None


@dataclass
class Ecu:
    """One processor with a fixed-priority scheduler.

    ``preemptive=True`` (default) models OSEK full-preemptive tasks; with
    ``preemptive=False`` the running task always completes before the next
    dispatch (OSEK non-preemptive / cooperative scheduling), so a
    low-priority task can block a later high-priority release — classic
    priority inversion, observable in the traces.
    """

    name: str
    preemptive: bool = True
    _now: float = 0.0
    _running: _Job | None = None
    _ready: list[_Job] = field(default_factory=list)
    _sequence: int = 0
    #: ``(task, start_time)`` records of first dispatches, drained by the
    #: simulator after each event.
    dispatch_log: list[tuple[str, float]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Time bookkeeping
    # ------------------------------------------------------------------

    def _accrue(self, now: float) -> None:
        """Advance internal time, burning CPU on the running job."""
        if now < self._now - TIME_EPSILON:
            raise SimulationError(
                f"ECU {self.name}: time moved backwards "
                f"({self._now} -> {now})"
            )
        if self._running is not None:
            self._running.remaining -= max(0.0, now - self._now)
            if self._running.remaining < -TIME_EPSILON:
                raise SimulationError(
                    f"ECU {self.name}: task {self._running.task} ran past "
                    "its completion; event processed late"
                )
        self._now = max(self._now, now)

    def _dispatch(self) -> None:
        """Put the highest-priority ready job on the CPU if it beats the
        running one."""
        if not self._ready:
            return
        # Highest priority first; FIFO among equals.
        self._ready.sort(key=lambda job: (-job.priority, job.sequence))
        best = self._ready[0]
        if self._running is None:
            self._ready.pop(0)
            self._start(best)
        elif self.preemptive and best.priority > self._running.priority:
            preempted = self._running
            self._ready.pop(0)
            self._ready.append(preempted)
            self._start(best)

    def _start(self, job: _Job) -> None:
        if job.started_at is None:
            job.started_at = self._now
            self.dispatch_log.append((job.task, self._now))
        self._running = job

    # ------------------------------------------------------------------
    # Event-loop interface
    # ------------------------------------------------------------------

    def release(self, now: float, task: str, priority: int, exec_time: float) -> None:
        """A task instance becomes ready at *now*."""
        if exec_time <= 0:
            raise SimulationError(
                f"ECU {self.name}: task {task} released with non-positive "
                f"execution time {exec_time}"
            )
        self._accrue(now)
        self._ready.append(
            _Job(task, priority, exec_time, now, self._sequence)
        )
        self._sequence += 1
        self._dispatch()

    def next_completion_time(self) -> float | None:
        """Absolute time the running job finishes, or None when idle."""
        if self._running is None:
            return None
        return self._now + self._running.remaining

    def complete_current(self, now: float) -> str:
        """Finish the running job (the event loop reached its end time)."""
        if self._running is None:
            raise SimulationError(f"ECU {self.name}: completion while idle")
        self._accrue(now)
        if self._running.remaining > TIME_EPSILON:
            raise SimulationError(
                f"ECU {self.name}: task {self._running.task} completed with "
                f"{self._running.remaining} time remaining"
            )
        finished = self._running.task
        self._running = None
        self._dispatch()
        return finished

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        return self._running is not None or bool(self._ready)

    @property
    def running_task(self) -> str | None:
        return self._running.task if self._running is not None else None

    def pending_tasks(self) -> tuple[str, ...]:
        """Ready (not running) task names, highest priority first."""
        ordered = sorted(self._ready, key=lambda job: (-job.priority, job.sequence))
        return tuple(job.task for job in ordered)

    def drain_dispatches(self) -> list[tuple[str, float]]:
        """Return and clear accumulated first-dispatch records."""
        drained = self.dispatch_log
        self.dispatch_log = []
        return drained

    def reset(self, now: float) -> None:
        """Forget all state at a period boundary."""
        if self.busy:
            raise SimulationError(
                f"ECU {self.name}: reset at {now} while work is pending "
                f"(running={self.running_task}, ready={self.pending_tasks()})"
            )
        self._now = now
