"""CAN bus model: priority arbitration, non-preemptive frames.

CAN arbitration picks the queued frame with the lowest identifier
(``frame_priority``) whenever the bus goes idle; an ongoing transmission is
never preempted. Frame transmission takes a fixed time per frame
(``frame_time``), abstracting bit-stuffing and payload-length variation,
plus an optional inter-frame gap.

Like :class:`~repro.sim.ecu.Ecu`, the bus is a passive state machine
driven by the simulator's event loop. Completed transmissions are handed
back as :class:`Transmission` records carrying sender/receiver ground
truth — the *logger* is what strips that information before the learner
sees the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.sim.timebase import TIME_EPSILON


@dataclass(frozen=True)
class Frame:
    """A queued message frame (ground-truth view)."""

    sender: str
    receiver: str
    priority: int
    enqueued_at: float


@dataclass(frozen=True)
class Transmission:
    """A completed frame transmission with its bus timing."""

    frame: Frame
    rise: float
    fall: float


@dataclass
class CanBus:
    """One shared CAN bus.

    ``error_rate`` enables the CAN error/retransmission model: each
    completed transmission is corrupted with that probability (seeded by
    ``error_seed``), in which case no frame is delivered — the bus time is
    consumed, and the frame re-enters arbitration. This reproduces the
    retransmission-induced latency jitter real buses exhibit, one of the
    paper's sources of environment nondeterminism.
    """

    frame_time: float = 0.5
    inter_frame_gap: float = 0.05
    error_rate: float = 0.0
    error_seed: int = 0
    _queue: list[Frame] = field(default_factory=list)
    _current: Frame | None = None
    _rise: float = 0.0
    _idle_at: float = 0.0
    _sequence: int = 0
    _order: dict[int, int] = field(default_factory=dict)
    _retransmissions: int = 0

    def __post_init__(self) -> None:
        if self.frame_time <= 0:
            raise SimulationError("frame_time must be positive")
        if self.inter_frame_gap < 0:
            raise SimulationError("inter_frame_gap must be non-negative")
        if not 0.0 <= self.error_rate < 1.0:
            raise SimulationError("error_rate must be in [0, 1)")
        import random as _random

        self._error_rng = _random.Random(self.error_seed)

    # ------------------------------------------------------------------
    # Event-loop interface
    # ------------------------------------------------------------------

    def enqueue(self, now: float, frame: Frame) -> None:
        """A node requests transmission of *frame* at time *now*."""
        self._order[id(frame)] = self._sequence
        self._sequence += 1
        self._queue.append(frame)
        self._try_start(now)

    def _try_start(self, now: float) -> None:
        if self._current is not None or not self._queue:
            return
        start = max(now, self._idle_at)
        # Arbitration happens at the moment the bus is free: among frames
        # already enqueued by then, the lowest identifier wins; ties break
        # by enqueue order (a real bus cannot tie, identifiers are unique,
        # but generated workloads may reuse priorities).
        eligible = [f for f in self._queue if f.enqueued_at <= start + TIME_EPSILON]
        if not eligible:
            return
        winner = min(
            eligible, key=lambda f: (f.priority, self._order[id(f)])
        )
        self._queue.remove(winner)
        self._current = winner
        self._rise = start

    def next_completion_time(self) -> float | None:
        """Absolute fall time of the ongoing transmission, or the start of
        the next one when frames are waiting for the bus to free up."""
        if self._current is not None:
            return self._rise + self.frame_time
        if self._queue:
            earliest = min(f.enqueued_at for f in self._queue)
            return max(earliest, self._idle_at)
        return None

    def advance(self, now: float) -> Transmission | None:
        """Process the bus up to *now*; return a completed transmission.

        Returns None when *now* is an arbitration point rather than a
        completion (a new transmission simply starts).
        """
        if self._current is not None:
            fall = self._rise + self.frame_time
            if now >= fall - TIME_EPSILON:
                frame = self._current
                rise = self._rise
                self._current = None
                self._idle_at = fall + self.inter_frame_gap
                if self.error_rate > 0 and self._error_rng.random() < self.error_rate:
                    # Corrupted on the wire: consume the bus time, requeue
                    # the frame for retransmission, deliver nothing.
                    self._retransmissions += 1
                    retry = Frame(
                        sender=frame.sender,
                        receiver=frame.receiver,
                        priority=frame.priority,
                        enqueued_at=self._idle_at,
                    )
                    self._order[id(retry)] = self._sequence
                    self._sequence += 1
                    self._queue.append(retry)
                    self._try_start(self._idle_at)
                    return None
                self._try_start(fall + self.inter_frame_gap)
                return Transmission(frame, rise, fall)
            return None
        self._try_start(now)
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        return self._current is not None or bool(self._queue)

    @property
    def transmitting(self) -> Frame | None:
        return self._current

    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def retransmission_count(self) -> int:
        """Corrupted frames retransmitted so far."""
        return self._retransmissions

    def reset(self, now: float) -> None:
        """Forget all state at a period boundary."""
        if self.busy:
            raise SimulationError(
                f"bus reset at {now} with pending frames "
                f"(transmitting={self._current}, queued={len(self._queue)})"
            )
        self._idle_at = now
