"""Execution simulator: ECUs, CAN bus, period executive, bus logger."""

from repro.sim.can import CanBus, Frame, Transmission
from repro.sim.ecu import Ecu
from repro.sim.executive import Executive, PeriodPlan
from repro.sim.logger import BusLogger, GroundTruthMessage
from repro.sim.random_exec import (
    AlternatingExecutionModel,
    BestCaseExecutionModel,
    ExecutionTimeModel,
    UniformExecutionModel,
    WorstCaseExecutionModel,
)
from repro.sim.simulator import (
    SimulationRun,
    Simulator,
    SimulatorConfig,
    simulate_trace,
)
from repro.sim.timebase import TIME_EPSILON, approximately, quantize

__all__ = [
    "Ecu",
    "CanBus",
    "Frame",
    "Transmission",
    "Executive",
    "PeriodPlan",
    "BusLogger",
    "GroundTruthMessage",
    "ExecutionTimeModel",
    "UniformExecutionModel",
    "WorstCaseExecutionModel",
    "BestCaseExecutionModel",
    "AlternatingExecutionModel",
    "Simulator",
    "SimulatorConfig",
    "SimulationRun",
    "simulate_trace",
    "TIME_EPSILON",
    "quantize",
    "approximately",
]
