"""The black-box bus logger: what the learner is allowed to see.

The logging device (paper Section 2.1) is attached to the shared bus. It
records task start/end events and message rising/falling edges with
timestamps — but *not* message senders or receivers, nor message meaning.
This module performs that information stripping: the simulator hands it
ground-truth :class:`~repro.sim.can.Transmission` records, and it emits
anonymous, per-period-labelled message events.

An optional clock resolution quantizes timestamps the way a real logger's
finite clock would, and :attr:`BusLogger.ground_truth` retains the
sender/receiver mapping for *evaluation only* (learned-vs-truth
comparison); the produced :class:`~repro.trace.trace.Trace` never contains
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.can import Transmission
from repro.sim.timebase import quantize
from repro.trace.events import Event, msg_fall, msg_rise, task_end, task_start
from repro.trace.period import Period
from repro.trace.trace import Trace


@dataclass(frozen=True)
class GroundTruthMessage:
    """Evaluation-only record tying a trace label to its real endpoints."""

    period_index: int
    label: str
    sender: str
    receiver: str
    rise: float
    fall: float


@dataclass
class BusLogger:
    """Accumulates events period by period and assembles the trace."""

    tasks: tuple[str, ...]
    resolution: float = 0.0
    _current_events: list[Event] = field(default_factory=list)
    _periods: list[Period] = field(default_factory=list)
    _message_counter: int = 0
    #: Ground truth for evaluation; not part of the emitted trace.
    ground_truth: list[GroundTruthMessage] = field(default_factory=list)

    def begin_period(self) -> None:
        """Start collecting a new period."""
        if self._current_events:
            raise ValueError("previous period not closed; call end_period()")
        self._message_counter = 0

    def log_task_start(self, time: float, task: str) -> None:
        self._current_events.append(
            task_start(quantize(time, self.resolution), task)
        )

    def log_task_end(self, time: float, task: str) -> None:
        self._current_events.append(
            task_end(quantize(time, self.resolution), task)
        )

    def log_transmission(self, transmission: Transmission) -> None:
        """Record a completed frame as anonymous rise/fall events."""
        self._message_counter += 1
        label = f"m{self._message_counter}"
        rise = quantize(transmission.rise, self.resolution)
        fall = quantize(transmission.fall, self.resolution)
        self._current_events.append(msg_rise(rise, label))
        self._current_events.append(msg_fall(fall, label))
        self.ground_truth.append(
            GroundTruthMessage(
                period_index=len(self._periods),
                label=label,
                sender=transmission.frame.sender,
                receiver=transmission.frame.receiver,
                rise=rise,
                fall=fall,
            )
        )

    def end_period(self) -> None:
        """Close the current period and validate its structure."""
        self._periods.append(
            Period(self._current_events, index=len(self._periods))
        )
        self._current_events = []

    def trace(self) -> Trace:
        """The assembled black-box trace."""
        return Trace(self.tasks, self._periods)

    def true_pairs(self) -> frozenset[tuple[str, str]]:
        """All ground-truth (sender, receiver) pairs observed on the bus."""
        return frozenset((g.sender, g.receiver) for g in self.ground_truth)
