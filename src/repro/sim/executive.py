"""Period executive: branch decisions and data-driven firing bookkeeping.

At each period start the executive resolves every disjunction node's
branch decision for that period (seeded RNG), yielding the period's
*routing plan*: exactly which message edges will fire if their sender
runs. From the plan it derives each task's expected input count, which the
simulator uses for the data-driven firing rule — a task is released when
all messages that will arrive this period have arrived (conjunction
semantics), and a task expecting no input never runs.

The plan is computed with oracle knowledge of the design; the *trace*
never exposes it. This mirrors reality: the black box knows its own
routing, the bus logger does not.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.systems.model import BranchMode, MessageEdge, SystemDesign


@dataclass(frozen=True)
class PeriodPlan:
    """Resolved routing for one period."""

    period_index: int
    #: Edges that fire this period if their sender executes.
    fired_edges: frozenset[MessageEdge]
    #: Tasks that will execute this period.
    executing: frozenset[str]
    #: Expected message count per executing, non-source task.
    expected_inputs: dict[str, int]

    def out_edges_of(self, task: str) -> tuple[MessageEdge, ...]:
        """The fired out-edges of *task*, by frame priority."""
        edges = [e for e in self.fired_edges if e.sender == task]
        edges.sort(key=lambda e: (e.frame_priority, e.receiver))
        return tuple(edges)


class Executive:
    """Draws period plans for a design with a dedicated RNG stream."""

    def __init__(self, design: SystemDesign, seed: int = 0):
        self.design = design
        self._rng = random.Random(seed)

    def plan_period(self, period_index: int) -> PeriodPlan:
        """Resolve branch decisions and compute the routing plan."""
        design = self.design
        fired: set[MessageEdge] = set()
        executing: set[str] = set()
        for task in design.topological_order():
            spec = design.task(task)
            if spec.is_source:
                runs = (
                    spec.activation_probability >= 1.0
                    or self._rng.random() < spec.activation_probability
                )
            else:
                runs = any(edge.receiver == task for edge in fired)
            if not runs:
                continue
            executing.add(task)
            fired.update(design.unconditional_out_edges(task))
            fired.update(self._choose_branches(task))
        expected: dict[str, int] = {}
        for edge in fired:
            expected[edge.receiver] = expected.get(edge.receiver, 0) + 1
        for task in executing:
            if not design.task(task).is_source and expected.get(task, 0) == 0:
                raise SimulationError(
                    f"task {task} marked executing without inputs"
                )
        return PeriodPlan(
            period_index=period_index,
            fired_edges=frozenset(fired),
            executing=frozenset(executing),
            expected_inputs=expected,
        )

    def _choose_branches(self, task: str) -> tuple[MessageEdge, ...]:
        conditional = self.design.conditional_out_edges(task)
        if not conditional:
            return ()
        mode = self.design.task(task).branch_mode
        if mode is BranchMode.EXACTLY_ONE:
            return (self._rng.choice(conditional),)
        if mode is BranchMode.AT_LEAST_ONE:
            chosen = [
                edge for edge in conditional if self._rng.random() < 0.5
            ]
            if not chosen:
                chosen = [self._rng.choice(conditional)]
            return tuple(chosen)
        raise SimulationError(
            f"task {task} has conditional edges but branch mode {mode}"
        )
