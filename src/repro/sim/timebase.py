"""Small time utilities shared by the simulator and the logging device."""

from __future__ import annotations

import math

#: Times within this distance are treated as simultaneous by the simulator
#: when ordering events deterministically.
TIME_EPSILON = 1e-9


def quantize(time: float, resolution: float) -> float:
    """Round *time* down to the logging device's clock resolution.

    A resolution of 0 disables quantization. Real bus loggers timestamp
    with a finite clock (e.g. 10 µs ticks); rounding *down* preserves the
    happened-before order of non-simultaneous events as long as they are
    at least one tick apart.
    """
    if resolution <= 0:
        return time
    # The small epsilon keeps exact ticks (1.2 / 0.1 -> 11.999...) from
    # being floored into the previous tick; the final rounding strips the
    # float noise from the multiplication.
    ticks = math.floor(time / resolution + 1e-9)
    return round(ticks * resolution, 12)


def approximately(a: float, b: float, epsilon: float = TIME_EPSILON) -> bool:
    """True if two timestamps are within *epsilon* of each other."""
    return abs(a - b) <= epsilon
