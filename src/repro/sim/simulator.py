"""Discrete-event simulator for periodic distributed designs.

Each period: the executive resolves branch decisions; source tasks are
released on their ECUs at the period start; when a task completes it
enqueues its fired out-edges as CAN frames; when a frame's transmission
completes, the receiver counts the arrival and is released once all
expected inputs for the period have arrived (data-driven conjunction
firing). The period must drain before its boundary — a message crossing
the boundary violates the paper's MOC and raises
:class:`~repro.errors.SimulationError`.

The simulator produces two artifacts:

* a black-box :class:`~repro.trace.trace.Trace` via the
  :class:`~repro.sim.logger.BusLogger` (what the learner sees), and
* the logger's ground-truth message records plus the per-period
  :class:`~repro.sim.executive.PeriodPlan` list (for evaluation only).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.sim.can import CanBus, Frame
from repro.sim.ecu import Ecu
from repro.sim.executive import Executive, PeriodPlan
from repro.sim.logger import BusLogger
from repro.sim.random_exec import ExecutionTimeModel, UniformExecutionModel
from repro.sim.timebase import TIME_EPSILON
from repro.systems.model import SystemDesign
from repro.trace.trace import Trace


@dataclass(frozen=True)
class SimulatorConfig:
    """Simulation parameters.

    ``period_length`` must comfortably exceed the busiest period's makespan
    (task times + bus times); the simulator fails loudly otherwise rather
    than silently violating the no-boundary-crossing assumption.
    """

    period_length: float = 100.0
    frame_time: float = 0.5
    inter_frame_gap: float = 0.05
    logger_resolution: float = 0.0
    #: Release jitter applied to source tasks at the period start, drawn
    #: uniformly from [0, source_jitter].
    source_jitter: float = 0.0
    #: Probability that a frame is corrupted and retransmitted (CAN error
    #: model); 0 disables it.
    bus_error_rate: float = 0.0
    #: ECUs scheduled non-preemptively (OSEK non-preemptive tasks); all
    #: others are fully preemptive.
    nonpreemptive_ecus: frozenset[str] = frozenset()


@dataclass
class SimulationRun:
    """Everything one simulation produced."""

    trace: Trace
    logger: BusLogger
    plans: list[PeriodPlan] = field(default_factory=list)

    @property
    def message_count(self) -> int:
        return self.trace.message_count()


class Simulator:
    """Simulates a design for a number of periods."""

    def __init__(
        self,
        design: SystemDesign,
        config: SimulatorConfig = SimulatorConfig(),
        seed: int = 0,
        exec_model: ExecutionTimeModel | None = None,
    ):
        self.design = design
        self.config = config
        self.executive = Executive(design, seed=seed)
        self.exec_model = (
            exec_model if exec_model is not None else UniformExecutionModel(seed + 1)
        )
        import random as _random

        self._jitter_rng = _random.Random(seed + 2)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, period_count: int) -> SimulationRun:
        """Simulate *period_count* periods and return the artifacts."""
        if period_count < 1:
            raise ValueError("period_count must be >= 1")
        logger = BusLogger(
            tasks=self.design.task_names,
            resolution=self.config.logger_resolution,
        )
        ecus = {
            name: Ecu(
                name,
                preemptive=name not in self.config.nonpreemptive_ecus,
            )
            for name in self.design.ecus()
        }
        buses = {
            name: CanBus(
                frame_time=self.config.frame_time,
                inter_frame_gap=self.config.inter_frame_gap,
                error_rate=self.config.bus_error_rate,
                error_seed=hash((name, self.config.bus_error_rate)) & 0xFFFF,
            )
            for name in self.design.buses()
        }
        plans: list[PeriodPlan] = []
        for period_index in range(period_count):
            plan = self.executive.plan_period(period_index)
            plans.append(plan)
            self._run_period(period_index, plan, ecus, buses, logger)
        return SimulationRun(trace=logger.trace(), logger=logger, plans=plans)

    # ------------------------------------------------------------------
    # One period
    # ------------------------------------------------------------------

    def _run_period(
        self,
        period_index: int,
        plan: PeriodPlan,
        ecus: dict[str, Ecu],
        buses: dict[str, CanBus],
        logger: BusLogger,
    ) -> None:
        base = period_index * self.config.period_length
        boundary = base + self.config.period_length
        logger.begin_period()
        for ecu in ecus.values():
            ecu.reset(base)
        for bus in buses.values():
            bus.reset(base)
        arrived: dict[str, int] = {}

        def release(task_name: str, now: float) -> None:
            spec = self.design.task(task_name)
            ecus[spec.ecu].release(
                now,
                task_name,
                spec.priority,
                self.exec_model.draw(spec, period_index),
            )

        # Offset (or jittered) source activations become timed events so a
        # later release can never rewind an ECU that is already running.
        pending_releases: list[tuple[float, str]] = []
        for spec in self.design.sources():
            if spec.name not in plan.executing:
                continue
            jitter = (
                self._jitter_rng.uniform(0.0, self.config.source_jitter)
                if self.config.source_jitter > 0
                else 0.0
            )
            pending_releases.append((base + spec.offset + jitter, spec.name))
        pending_releases.sort()

        # Event loop: next event is the earliest source release, ECU
        # completion, or bus event.
        while True:
            times: list[tuple[float, str, str]] = []
            if pending_releases:
                release_time, task_name = pending_releases[0]
                times.append((release_time, "release", task_name))
            for name, ecu in ecus.items():
                completion = ecu.next_completion_time()
                if completion is not None:
                    times.append((completion, "ecu", name))
            for name, bus in buses.items():
                bus_event = bus.next_completion_time()
                if bus_event is not None:
                    times.append((bus_event, "bus", name))
            if not times:
                break
            times.sort(key=lambda item: (item[0], item[1], item[2]))
            now, kind, name = times[0]
            if now > boundary + TIME_EPSILON:
                raise SimulationError(
                    f"period {period_index} work extends to {now}, past the "
                    f"boundary {boundary}; increase period_length"
                )
            if kind == "release":
                pending_releases.pop(0)
                release(name, now)
            elif kind == "ecu":
                finished = ecus[name].complete_current(now)
                logger.log_task_end(now, finished)
                for edge in plan.out_edges_of(finished):
                    buses[edge.bus].enqueue(
                        now,
                        Frame(
                            sender=edge.sender,
                            receiver=edge.receiver,
                            priority=edge.frame_priority,
                            enqueued_at=now,
                        ),
                    )
            else:
                transmission = buses[name].advance(now)
                if transmission is not None:
                    logger.log_transmission(transmission)
                    receiver = transmission.frame.receiver
                    arrived[receiver] = arrived.get(receiver, 0) + 1
                    if arrived[receiver] == plan.expected_inputs.get(receiver, -1):
                        release(receiver, transmission.fall)
            # Drain first-dispatch records into the trace log.
            for ecu in ecus.values():
                for task_name, start_time in ecu.drain_dispatches():
                    logger.log_task_start(start_time, task_name)

        # Every planned task must have executed.
        missing = [
            task
            for task in plan.executing
            if task not in arrived
            and not self.design.task(task).is_source
            and plan.expected_inputs.get(task, 0) > 0
            and arrived.get(task, 0) < plan.expected_inputs[task]
        ]
        if missing:
            raise SimulationError(
                f"period {period_index}: tasks never received all inputs: "
                f"{sorted(missing)}"
            )
        logger.end_period()


def simulate_trace(
    design: SystemDesign,
    period_count: int,
    config: SimulatorConfig = SimulatorConfig(),
    seed: int = 0,
    exec_model: ExecutionTimeModel | None = None,
) -> Trace:
    """Convenience wrapper returning only the black-box trace."""
    return Simulator(design, config, seed, exec_model).run(period_count).trace
